//! Exact samplers used by the batched count-based engine.
//!
//! The batched engine ([`BatchedSimulator`](crate::BatchedSimulator)) advances
//! time in *collision-free* blocks: it first samples how many consecutive
//! interactions involve pairwise-distinct agents (the birthday-process
//! distribution, [`CollisionSampler`]), then samples *which* states those
//! agents hold via multivariate hypergeometric draws from the configuration's
//! state counts ([`multivariate_hypergeometric_sparse`]; the dense
//! [`multivariate_hypergeometric`] is the same decomposition over a full
//! counts vector).  Both samplers are exact
//! (up to `f64` rounding in the inverse-transform step), so the batched engine
//! simulates the *same* stochastic process as the sequential per-interaction
//! engine — not an approximation of it.

use rand::rngs::SmallRng;
use rand::Rng;

/// `ln Γ(z)` for `z > 0` via the Lanczos approximation (g = 7, 9 terms),
/// accurate to ~15 significant digits — plenty for inverse-transform sampling.
#[must_use]
pub fn ln_gamma(z: f64) -> f64 {
    debug_assert!(z > 0.0, "ln_gamma requires a positive argument, got {z}");
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    const G: f64 = 7.0;
    let z = z - 1.0;
    let mut x = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        x += c / (z + i as f64);
    }
    let t = z + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (z + 0.5) * t.ln() - t + x.ln()
}

/// Exact-by-summation `ln(n!)` for small `n`, filled once on first use.
fn small_ln_factorials() -> &'static [f64; 128] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[f64; 128]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0.0f64; 128];
        for n in 2..t.len() {
            t[n] = t[n - 1] + (n as f64).ln();
        }
        t
    })
}

/// Slots of the per-thread large-argument memo for [`ln_factorial`]
/// (direct-mapped by the argument's low bits; 16 KiB per thread).
const LN_FACT_MEMO_SLOTS: usize = 1024;

thread_local! {
    /// `(argument, ln_factorial(argument))` pairs; arguments are ≥ 128, so a
    /// zero key marks an empty slot.
    static LN_FACT_MEMO: std::cell::RefCell<[(u64, f64); LN_FACT_MEMO_SLOTS]> =
        const { std::cell::RefCell::new([(0, 0.0); LN_FACT_MEMO_SLOTS]) };
}

/// `ln(n!)`, accurate to ~1e-12 relative error.
///
/// Hot enough to matter: every hypergeometric mode/pmf computation costs ~9
/// evaluations and the batched engine performs several draws per
/// collision-free block.  Small arguments come from a summation table; large
/// ones from a Stirling series behind a per-thread direct-mapped memo — the
/// arguments of a block's draws repeat heavily (`ln C(total, draws)` terms
/// where the totals shrink by the class counts as the multivariate
/// decomposition walks the occupied states, and the first draw of every block
/// starts from the same population size), so most lookups hit.
#[must_use]
pub fn ln_factorial(n: u64) -> f64 {
    let table = small_ln_factorials();
    if (n as usize) < table.len() {
        return table[n as usize];
    }
    LN_FACT_MEMO.with(|memo| {
        let mut memo = memo.borrow_mut();
        let slot = (n as usize) & (LN_FACT_MEMO_SLOTS - 1);
        let (key, value) = memo[slot];
        if key == n {
            return value;
        }
        // Stirling series: error < 1/(1680 n⁷), far below f64 noise for n ≥ 128.
        let nf = n as f64;
        let inv = 1.0 / nf;
        let inv2 = inv * inv;
        let value = (nf + 0.5) * nf.ln() - nf
            + 0.5 * (2.0 * std::f64::consts::PI).ln()
            + inv * (1.0 / 12.0 - inv2 * (1.0 / 360.0 - inv2 / 1260.0));
        memo[slot] = (n, value);
        value
    })
}

/// `ln C(n, k)` (natural log of the binomial coefficient).
#[must_use]
fn ln_choose(n: u64, k: u64) -> f64 {
    debug_assert!(k <= n);
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Standard deviation below which the inverse-transform walk beats the
/// rejection sampler's fixed setup cost (a handful of `ln_choose`
/// evaluations).
const REJECTION_SIGMA: f64 = 96.0;

/// Draw from an arbitrary **log-concave** discrete distribution supported on
/// `lo..=hi` with the given `mode`, via rejection from a
/// uniform-body-plus-geometric-tails envelope.
///
/// The envelope needs no distribution-specific constants — log-concavity
/// alone guarantees domination:
///
/// * on the body `[a, b] = [mode − d, mode + d] ∩ [lo, hi]` the pmf is at
///   most its mode value (uniform envelope);
/// * beyond the body, successive pmf ratios are non-increasing, so the tail
///   starting at `x₀ = b + 1` satisfies `f(x₀ + t) ≤ f(x₀)·r^t` with
///   `r = f(x₀+1)/f(x₀)` (a geometric envelope), and symmetrically below
///   `a − 1`.
///
/// With the body half-width `d ≈ 1.3σ` the envelope's total mass is ~1.3–1.6
/// of the distribution's, so the expected number of iterations is a small
/// constant **independent of σ** — each costing one `ln_pmf` evaluation.
/// `ln_pmf` is only queried inside `[lo, hi]` and may return `−∞` nowhere on
/// that range.
///
/// Returns `None` (caller falls back to the inverse-transform walk) in the
/// degenerate case of a tail ratio so close to 1 that a geometric envelope
/// cannot be anchored without risking domination failure — impossible for
/// the engines' parameter ranges, but cheap to guard.
fn log_concave_reject(
    rng: &mut SmallRng,
    lo: u64,
    hi: u64,
    mode: u64,
    sigma: f64,
    ln_pmf: impl Fn(u64) -> f64,
) -> Option<u64> {
    debug_assert!((lo..=hi).contains(&mode));
    let ln_f_mode = ln_pmf(mode);
    let d = (1.3 * sigma).ceil().max(1.0) as u64;
    let a = mode.saturating_sub(d).max(lo);
    let b = (mode + d).min(hi);

    // Relative (to the mode probability) envelope masses of the three
    // regions; `ln_r_*` are the geometric tail log-ratios, strictly negative
    // because the pmf is strictly decreasing one step beyond the body (the
    // only possible plateau of a log-concave pmf is at the mode itself).
    let tail = |anchor: f64, next: Option<f64>| -> Option<(f64, f64, f64)> {
        let ln_h = anchor - ln_f_mode;
        let ln_r = match next {
            Some(n) => {
                let ln_r = n - anchor;
                if ln_r >= -1e-12 {
                    return None; // flat tail: envelope unusable, fall back
                }
                ln_r
            }
            None => f64::NEG_INFINITY, // single-point tail
        };
        Some((ln_h.exp() / (1.0 - ln_r.exp()), ln_h, ln_r))
    };
    let body = (b - a + 1) as f64;
    let (right, ln_h_right, ln_r_right) = if b < hi {
        tail(ln_pmf(b + 1), (b + 1 < hi).then(|| ln_pmf(b + 2)))?
    } else {
        (0.0, f64::NEG_INFINITY, f64::NEG_INFINITY)
    };
    let (left, ln_h_left, ln_r_left) = if a > lo {
        tail(ln_pmf(a - 1), (a - 1 > lo).then(|| ln_pmf(a - 2)))?
    } else {
        (0.0, f64::NEG_INFINITY, f64::NEG_INFINITY)
    };
    let total_mass = body + right + left;

    loop {
        let z = rng.gen::<f64>() * total_mass;
        let (candidate, ln_envelope) = if z < body {
            // Uniform body: reuse the fractional part as the vertical
            // coordinate.
            let x = a + (z as u64).min(b - a);
            let v = z.fract();
            if v.max(f64::MIN_POSITIVE).ln() <= ln_pmf(x) - ln_f_mode {
                return Some(x);
            }
            continue;
        } else if z < body + right {
            // Geometric right tail: t ~ Geom(1 − r).
            let t = geometric_jump(rng, ln_r_right);
            match b.checked_add(1 + t) {
                Some(x) if x <= hi => (x, ln_h_right + t as f64 * ln_r_right),
                _ => continue, // envelope mass beyond the support: reject
            }
        } else {
            let t = geometric_jump(rng, ln_r_left);
            match (a - 1).checked_sub(t) {
                Some(x) if x >= lo => (x, ln_h_left + t as f64 * ln_r_left),
                _ => continue,
            }
        };
        let v: f64 = rng.gen();
        if v.max(f64::MIN_POSITIVE).ln() + ln_envelope <= ln_pmf(candidate) - ln_f_mode {
            return Some(candidate);
        }
    }
}

/// Sample `t = ⌊ln u / ln r⌋`, the jump length of a geometric tail with
/// log-ratio `ln_r < 0` (`t = 0` for a single-point tail).
fn geometric_jump(rng: &mut SmallRng, ln_r: f64) -> u64 {
    if ln_r == f64::NEG_INFINITY {
        return 0;
    }
    let u: f64 = rng.gen();
    let t = u.max(f64::MIN_POSITIVE).ln() / ln_r;
    // Cap far beyond any support the engines use; the rejection test discards
    // out-of-support candidates anyway.
    t.min(9.0e18) as u64
}

/// `ln P(X = k)` of the hypergeometric distribution.
#[inline]
fn ln_pmf_hypergeometric(total: u64, success: u64, draws: u64, k: u64) -> f64 {
    ln_choose(success, k) + ln_choose(total - success, draws - k) - ln_choose(total, draws)
}

/// Draw from the hypergeometric distribution: the number of *successes* in
/// `draws` draws **without replacement** from a population of `total` items of
/// which `success` are successes.
///
/// Exact sampling at `O(1)` expected cost regardless of the parameters: small
/// spreads use inverse transform from the mode with pmf-ratio recurrences
/// (`O(σ)`, a few iterations), large spreads use log-concave rejection
/// (`log_concave_reject`: a uniform body with geometric tails, a small
/// constant number of iterations independent of `σ`).  The crossover keeps
/// the engines' hot draws — tiny per-block hypergeometrics as well as the
/// sharded engine's `σ ≈ √(n/S)`-scale cross-shard and rebalancing draws —
/// on their cheap path.
///
/// # Examples
///
/// ```rust
/// use ppsim::sample::hypergeometric;
///
/// let mut rng = ppsim::seeded_rng(42);
/// // 50 draws without replacement from 1000 items of which 300 are successes:
/// // the sample count is within the support and near the mean 15.
/// let k = hypergeometric(&mut rng, 1000, 300, 50);
/// assert!(k <= 50);
/// // Degenerate supports are exact, not sampled.
/// assert_eq!(hypergeometric(&mut rng, 10, 0, 7), 0);
/// assert_eq!(hypergeometric(&mut rng, 10, 10, 7), 7);
/// assert_eq!(hypergeometric(&mut rng, 10, 4, 10), 4);
/// ```
///
/// # Panics
///
/// Panics if `draws > total` or `success > total` — a batch can never draw
/// more agents than the population holds.
#[must_use]
pub fn hypergeometric(rng: &mut SmallRng, total: u64, success: u64, draws: u64) -> u64 {
    assert!(
        draws <= total,
        "cannot draw {draws} items without replacement from a population of {total}"
    );
    assert!(
        success <= total,
        "success count {success} exceeds population {total}"
    );
    // Degenerate supports first: they are common in the engine's inner loop.
    if draws == 0 || success == 0 {
        return 0;
    }
    if success == total {
        return draws;
    }
    if draws == total {
        return success;
    }

    let failure = total - success;
    let lo = draws.saturating_sub(failure); // max(0, draws - (total - success))
    let hi = success.min(draws);
    if lo == hi {
        return lo;
    }

    // Mode of the hypergeometric: floor((draws+1)(success+1)/(total+2)).
    let mode = (((draws + 1) as u128 * (success + 1) as u128) / (total + 2) as u128) as u64;
    let mode = mode.clamp(lo, hi);

    // Wide distributions take the O(1) log-concave rejection path; narrow
    // ones fall through to the O(σ) inverse-transform walk below.  Since
    // σ ≤ √(min(draws, hi−lo))/2, a single integer compare keeps the hot
    // small-draw path free of the σ computation entirely.
    if (hi - lo).min(draws) as f64 > 4.0 * REJECTION_SIGMA * REJECTION_SIGMA {
        let tf = total as f64;
        let sigma = (draws as f64
            * (success as f64 / tf)
            * (failure as f64 / tf)
            * ((total - draws) as f64 / (tf - 1.0)))
            .sqrt();
        if sigma > REJECTION_SIGMA {
            if let Some(k) = log_concave_reject(rng, lo, hi, mode, sigma, |k| {
                ln_pmf_hypergeometric(total, success, draws, k)
            }) {
                return k;
            }
        }
    }

    let ln_p_mode =
        ln_choose(success, mode) + ln_choose(failure, draws - mode) - ln_choose(total, draws);
    let p_mode = ln_p_mode.exp();

    // p(k+1)/p(k) = (success-k)(draws-k) / ((k+1)(failure-draws+k+1)).
    // On the valid support k ≥ lo the mixed terms are non-negative, but they
    // must be summed before subtracting to avoid unsigned underflow.
    let ratio_up = |k: u64| -> f64 {
        ((success - k) as f64 * (draws - k) as f64)
            / ((k + 1) as f64 * (failure + k + 1 - draws) as f64)
    };
    // p(k-1)/p(k) = k(failure-draws+k) / ((success-k+1)(draws-k+1))
    let ratio_down = |k: u64| -> f64 {
        (k as f64 * (failure + k - draws) as f64)
            / ((success - k + 1) as f64 * (draws - k + 1) as f64)
    };

    let u: f64 = rng.gen();
    let mut acc = p_mode;
    if u < acc {
        return mode;
    }
    let (mut up_k, mut up_p) = (mode, p_mode);
    let (mut down_k, mut down_p) = (mode, p_mode);
    loop {
        let mut advanced = false;
        if up_k < hi {
            up_p *= ratio_up(up_k);
            up_k += 1;
            acc += up_p;
            if u < acc {
                return up_k;
            }
            advanced = true;
        }
        if down_k > lo {
            down_p *= ratio_down(down_k);
            down_k -= 1;
            acc += down_p;
            if u < acc {
                return down_k;
            }
            advanced = true;
        }
        if !advanced {
            // The accumulated mass fell a few ulps short of 1; u landed in the
            // rounding gap.  Returning the mode keeps the bias below ~1e-13.
            return mode;
        }
    }
}

/// Draw a multivariate hypergeometric sample: `draws` items without
/// replacement from a population whose composition is `counts`, writing the
/// per-class sample sizes into `out` (resized to `counts.len()`).
///
/// Conditional decomposition: class `i` receives
/// `Hypergeometric(remaining_total, counts[i], remaining_draws)` items.
///
/// # Panics
///
/// Panics if `draws` exceeds the population size `counts.iter().sum()`.
pub fn multivariate_hypergeometric(
    rng: &mut SmallRng,
    counts: &[u64],
    draws: u64,
    out: &mut Vec<u64>,
) {
    let mut remaining_total: u64 = counts.iter().sum();
    assert!(
        draws <= remaining_total,
        "cannot draw {draws} agents from a population of {remaining_total}"
    );
    out.clear();
    out.resize(counts.len(), 0);
    let mut remaining_draws = draws;
    for (i, &c) in counts.iter().enumerate() {
        if remaining_draws == 0 {
            break;
        }
        if c == 0 {
            continue;
        }
        let k = conditional_class_draw(rng, c, remaining_total, remaining_draws);
        out[i] = k;
        remaining_draws -= k;
        remaining_total -= c;
    }
    debug_assert_eq!(
        remaining_draws, 0,
        "the population composition was exhausted early"
    );
}

/// Draw from the binomial distribution: the number of successes in `trials`
/// independent Bernoulli(`p`) experiments.
///
/// Uses the same inverse-transform-from-the-mode construction as
/// [`hypergeometric`]: expected cost `O(σ)` with `σ = √(trials·p·(1−p))`,
/// independent of the success probability's denominator.  The sharded engine
/// draws one binomial per shard-pair category per epoch, so the cost is
/// amortised over millions of interactions.
///
/// # Panics
///
/// Panics if `p` is not a probability (outside `[0, 1]` or NaN).
#[must_use]
pub fn binomial(rng: &mut SmallRng, trials: u64, p: f64) -> u64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "binomial success probability {p} outside [0, 1]"
    );
    if trials == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return trials;
    }
    let ln_p = p.ln();
    let ln_q = (1.0 - p).ln();
    let ln_pmf =
        |k: u64| -> f64 { ln_choose(trials, k) + k as f64 * ln_p + (trials - k) as f64 * ln_q };
    // Mode of the binomial: floor((trials + 1)·p), clamped to the support.
    let mode = (((trials + 1) as f64) * p).floor().min(trials as f64) as u64;

    // Wide distributions take the O(1) log-concave rejection path (see
    // `hypergeometric`); narrow ones use the inverse-transform walk below.
    // σ ≤ √trials/2, so small trial counts skip the σ computation.
    if trials as f64 > 4.0 * REJECTION_SIGMA * REJECTION_SIGMA {
        let sigma = (trials as f64 * p * (1.0 - p)).sqrt();
        if sigma > REJECTION_SIGMA {
            if let Some(k) = log_concave_reject(rng, 0, trials, mode, sigma, ln_pmf) {
                return k;
            }
        }
    }

    let p_mode = ln_pmf(mode).exp();

    // p(k+1)/p(k) = (trials − k)/(k + 1) · p/(1 − p).
    let odds = p / (1.0 - p);
    let ratio_up = |k: u64| -> f64 { (trials - k) as f64 / (k + 1) as f64 * odds };
    // p(k−1)/p(k) = k / (trials − k + 1) · (1 − p)/p.
    let ratio_down = |k: u64| -> f64 { k as f64 / (trials - k + 1) as f64 / odds };

    let u: f64 = rng.gen();
    let mut acc = p_mode;
    if u < acc {
        return mode;
    }
    let (mut up_k, mut up_p) = (mode, p_mode);
    let (mut down_k, mut down_p) = (mode, p_mode);
    loop {
        let mut advanced = false;
        if up_k < trials {
            up_p *= ratio_up(up_k);
            up_k += 1;
            acc += up_p;
            if u < acc {
                return up_k;
            }
            advanced = true;
        }
        if down_k > 0 {
            down_p *= ratio_down(down_k);
            down_k -= 1;
            acc += down_p;
            if u < acc {
                return down_k;
            }
            advanced = true;
        }
        if !advanced {
            // u landed in the few-ulp gap left by rounding; the mode keeps the
            // bias far below statistical noise (same rationale as in
            // `hypergeometric`).
            return mode;
        }
    }
}

/// Draw a multinomial sample: distribute `trials` items over categories with
/// (unnormalised, possibly huge) integer `weights`, writing the per-category
/// counts into `out` (resized to `weights.len()`).
///
/// Conditional decomposition: category `i` receives
/// `Binomial(remaining_trials, weights[i] / remaining_weight)` items, the last
/// non-empty category takes whatever is left.  Weights are `u128` so that the
/// sharded engine can pass exact pair counts (`m_k·m_l` up to `10¹⁸`) without
/// rounding.
///
/// # Panics
///
/// Panics if `trials > 0` and every weight is zero.
pub fn multinomial(rng: &mut SmallRng, trials: u64, weights: &[u128], out: &mut Vec<u64>) {
    out.clear();
    out.resize(weights.len(), 0);
    let mut remaining_weight: u128 = weights.iter().sum();
    assert!(
        trials == 0 || remaining_weight > 0,
        "cannot distribute {trials} items over all-zero weights"
    );
    let mut remaining = trials;
    for (slot, &w) in out.iter_mut().zip(weights) {
        if remaining == 0 {
            break;
        }
        if w == 0 {
            continue;
        }
        let k = if w == remaining_weight {
            remaining
        } else {
            binomial(rng, remaining, w as f64 / remaining_weight as f64)
        };
        *slot = k;
        remaining -= k;
        remaining_weight -= w;
    }
    debug_assert_eq!(remaining, 0, "the weight mass was exhausted early");
}

/// One step of the conditional decomposition shared by every multivariate
/// hypergeometric loop in this crate: how many of the `remaining_draws` items
/// land in the current class of size `class_count`, out of `remaining_total`
/// items still in the pool.  The last non-empty class takes whatever is left.
#[inline]
pub(crate) fn conditional_class_draw(
    rng: &mut SmallRng,
    class_count: u64,
    remaining_total: u64,
    remaining_draws: u64,
) -> u64 {
    if class_count == remaining_total {
        remaining_draws
    } else {
        hypergeometric(rng, remaining_total, class_count, remaining_draws)
    }
}

/// Sparse multivariate hypergeometric draw, as used by the batched engine:
/// `draws` agents without replacement from the sub-population
/// `total = Σ counts[s]` over `s ∈ occupied`, appended to `out` as
/// `(state, k)` pairs with `k > 0`.
///
/// Only the listed states are visited, so the cost is `O(|occupied|)`
/// regardless of how large (and empty) the full state space is.  `occupied`
/// may contain states with zero count; they are skipped.
pub fn multivariate_hypergeometric_sparse(
    rng: &mut SmallRng,
    counts: &[u64],
    occupied: &[u32],
    total: u64,
    draws: u64,
    out: &mut Vec<(u32, u64)>,
) {
    debug_assert!(draws <= total);
    out.clear();
    let mut remaining_total = total;
    let mut remaining_draws = draws;
    for &s in occupied {
        if remaining_draws == 0 {
            break;
        }
        let c = counts[s as usize];
        if c == 0 {
            continue;
        }
        let k = conditional_class_draw(rng, c, remaining_total, remaining_draws);
        if k > 0 {
            out.push((s, k));
        }
        remaining_draws -= k;
        remaining_total -= c;
    }
    debug_assert_eq!(remaining_draws, 0, "the occupied list lost agents");
}

/// Where the first colliding agent of a batch appears.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Collision {
    /// The initiator of the colliding interaction had already interacted
    /// earlier in the batch.
    pub initiator_used: bool,
    /// The responder of the colliding interaction had already interacted
    /// earlier in the batch.
    pub responder_used: bool,
}

/// Result of sampling the length of one collision-free batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchDraw {
    /// Number of leading interactions whose `2·clean` agents are pairwise
    /// distinct.
    pub clean: u64,
    /// The collision terminating the batch, or `None` if the batch was
    /// truncated at the caller's cap before any collision occurred.
    pub collision: Option<Collision>,
}

/// Sampler for the length of collision-free batches in a population of fixed
/// size `n`.
///
/// Caches the population-dependent constants of the birthday-process survival
/// function so that each draw costs only a couple of [`ln_factorial`]
/// evaluations (the inversion starts from a closed-form approximation and
/// walks at most a few steps).
#[derive(Debug, Clone)]
pub struct CollisionSampler {
    n: u64,
    t_max: u64,
    ln_fact_n: f64,
    /// `ln(n (n-1))` — the per-interaction denominator.
    ln_pair: f64,
}

impl CollisionSampler {
    /// Create a sampler for populations of `n` agents.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn new(n: u64) -> Self {
        assert!(n >= 2, "the birthday process needs at least two agents");
        CollisionSampler {
            n,
            t_max: n / 2, // after t_max clean interactions a collision is forced
            ln_fact_n: ln_factorial(n),
            ln_pair: (n as f64).ln() + (n as f64 - 1.0).ln(),
        }
    }

    /// `ln P(first 2t agent draws are pairwise distinct)`:
    /// `ln [ n! / (n-2t)! / (n^t (n-1)^t) ]` (within each interaction the two
    /// agents are distinct by construction, hence the `n(n-1)` denominator).
    ///
    /// Short prefixes are summed as exact log-ratios
    /// `Σ_j ln(1 − 2j/n) + ln(1 − 2j/(n−1))`: the factorial form cancels two
    /// `~n ln n`-sized terms, whose ulp-scale residue (`~10⁻⁸`) dwarfs the
    /// true value `O(−t²/n)` for small `t` at large `n`.  Uncorrected, the
    /// residue can make `ln Q(1)` negative — but `Q(1) = 1` *exactly* (the
    /// two agents of one interaction are distinct by construction), and a
    /// draw landing in that phantom gap would announce a collision in a
    /// block's first interaction and send mass-accounting off a cliff (once
    /// per ~10⁸ blocks: invisible in short runs, certain in the multi-billion
    /// interaction counting experiments).  The sum form makes `ln Q(1) = 0`
    /// exact and the whole small-`t` region accurate to full precision.
    fn ln_no_collision(&self, t: u64) -> f64 {
        debug_assert!(2 * t <= self.n);
        if t <= 32 {
            let nf = self.n as f64;
            let mut acc = 0.0;
            for j in 1..t {
                let jf = (2 * j) as f64;
                acc += (-jf / nf).ln_1p() + (-jf / (nf - 1.0)).ln_1p();
            }
            return acc;
        }
        self.ln_fact_n - ln_factorial(self.n - 2 * t) - t as f64 * self.ln_pair
    }

    /// Sample how many interactions the next collision-free batch contains.
    ///
    /// Simulates — in expected `O(1)` time — the prefix of the sequential
    /// schedule up to the first interaction that re-uses an agent: `clean`
    /// interactions touch `2·clean` pairwise-distinct agents, then (unless the
    /// caller's `cap` truncates the batch first) one further interaction
    /// involves at least one agent that already interacted, as described by
    /// [`Collision`].
    ///
    /// `cap` bounds the number of interactions the caller is willing to
    /// execute in this batch (budget/check-granularity); the returned batch
    /// satisfies `clean + collision.is_some() as u64 <= cap`.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn sample(&self, rng: &mut SmallRng, cap: u64) -> BatchDraw {
        assert!(cap > 0, "an empty batch is meaningless");

        // Invert the survival function: T = min { t : Q(t) < u } is the index
        // of the first interaction containing a repeated agent; equivalently,
        // find the largest t with ln Q(t) >= ln u.
        let u: f64 = rng.gen();
        let ln_u = u.max(f64::MIN_POSITIVE).ln();

        // Second-order approximation ln Q(t) ≈ -(2t² - t)/n gives the starting
        // guess t ≈ (1 + sqrt(1 - 8 n ln u)) / 4; the exact survival function
        // deviates from it only by O(t³/n²) ~ O(1/√n) at the birthday scale,
        // so the subsequent exact walk almost always takes 0–2 steps.
        let nf = self.n as f64;
        let guess = ((1.0 + (1.0 - 8.0 * nf * ln_u).sqrt()) / 4.0) as u64;
        let mut t = guess.min(self.t_max);
        while self.ln_no_collision(t) < ln_u {
            t -= 1; // terminates: ln Q(0) = 0 >= ln_u
        }
        while t < self.t_max && self.ln_no_collision(t + 1) >= ln_u {
            t += 1;
        }
        let first_collision_at = t + 1; // interaction index of the collision

        if first_collision_at > cap {
            // The whole cap-limited batch is clean; the collision (if any)
            // lies beyond what we execute now and is resampled fresh next
            // batch.
            return BatchDraw {
                clean: cap,
                collision: None,
            };
        }

        let clean = first_collision_at - 1;
        let r = 2 * clean; // agents already used when the collision happens
        debug_assert!(r >= 1, "a collision cannot happen in the first interaction");

        // Conditioned on "interaction clean+1 collides", decide where:
        //   a = P(initiator is a used agent)                = r/n
        //   b = P(initiator new, responder used)            = (n-r)/n * r/(n-1)
        let r_f = r as f64;
        let a = r_f / nf;
        let b = (nf - r_f) / nf * r_f / (nf - 1.0);
        let initiator_used = rng.gen::<f64>() * (a + b) < a;
        let responder_used = if initiator_used {
            // Responder is uniform over the n-1 agents other than the
            // initiator, r-1 of which are used.
            rng.gen::<f64>() * (nf - 1.0) < r_f - 1.0
        } else {
            true
        };
        BatchDraw {
            clean,
            collision: Some(Collision {
                initiator_used,
                responder_used,
            }),
        }
    }
}

/// One-shot convenience wrapper around [`CollisionSampler`]; prefer holding a
/// sampler when drawing repeatedly for the same population size.
///
/// # Panics
///
/// Panics if `n < 2` or `cap == 0`.
pub fn sample_collision(rng: &mut SmallRng, n: u64, cap: u64) -> BatchDraw {
    CollisionSampler::new(n).sample(rng, cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(5) = 24, Γ(11) = 10!.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12);
        assert!((ln_gamma(11.0) - 3_628_800f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_factorial_is_consistent() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        let mut direct = 0.0f64;
        for n in 2..50u64 {
            direct += (n as f64).ln();
            assert!((ln_factorial(n) - direct).abs() < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn hypergeometric_degenerate_cases() {
        let mut rng = seeded_rng(1);
        assert_eq!(hypergeometric(&mut rng, 10, 4, 0), 0);
        assert_eq!(hypergeometric(&mut rng, 10, 0, 7), 0);
        assert_eq!(hypergeometric(&mut rng, 10, 10, 7), 7);
        assert_eq!(hypergeometric(&mut rng, 10, 4, 10), 4);
        // Forced support: drawing 9 of 10 with 4 successes must hit [3, 4].
        for _ in 0..100 {
            let k = hypergeometric(&mut rng, 10, 4, 9);
            assert!((3..=4).contains(&k));
        }
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn hypergeometric_rejects_draws_beyond_population() {
        let mut rng = seeded_rng(1);
        let _ = hypergeometric(&mut rng, 10, 4, 11);
    }

    #[test]
    fn hypergeometric_mean_and_range_are_correct() {
        let mut rng = seeded_rng(42);
        let (total, success, draws) = (1000u64, 300u64, 50u64);
        let trials = 20_000;
        let mut sum = 0u64;
        for _ in 0..trials {
            let k = hypergeometric(&mut rng, total, success, draws);
            assert!(k <= draws && k <= success);
            sum += k;
        }
        let mean = sum as f64 / trials as f64;
        let expected = draws as f64 * success as f64 / total as f64; // 15
                                                                     // σ ≈ 3.2, standard error ≈ 0.023: a ±0.15 window is ~6σ of the mean.
        assert!(
            (mean - expected).abs() < 0.15,
            "empirical mean {mean:.3} too far from {expected}"
        );
    }

    #[test]
    fn hypergeometric_matches_exact_pmf() {
        // Chi-squared-style check against exactly computed probabilities.
        let (total, success, draws) = (30u64, 12u64, 10u64);
        let mut rng = seeded_rng(7);
        let trials = 50_000usize;
        let mut counts = vec![0u32; draws as usize + 1];
        for _ in 0..trials {
            counts[hypergeometric(&mut rng, total, success, draws) as usize] += 1;
        }
        for k in 0..=draws {
            let ln_p = ln_choose(success, k.min(success)) + ln_choose(total - success, draws - k)
                - ln_choose(total, draws);
            let p = if k <= success && draws - k <= total - success {
                ln_p.exp()
            } else {
                0.0
            };
            let expected = p * trials as f64;
            let got = f64::from(counts[k as usize]);
            // Allow 5 sigma plus a small absolute slack for tiny bins.
            let sigma = (expected.max(1.0)).sqrt();
            assert!(
                (got - expected).abs() < 5.0 * sigma + 3.0,
                "k = {k}: got {got}, expected {expected:.1}"
            );
        }
    }

    #[test]
    fn multivariate_hypergeometric_sums_and_bounds() {
        let mut rng = seeded_rng(3);
        let counts = vec![5u64, 0, 17, 3, 0, 25];
        for draws in [0u64, 1, 10, 50] {
            let mut out = Vec::new();
            multivariate_hypergeometric(&mut rng, &counts, draws, &mut out);
            assert_eq!(out.len(), counts.len());
            assert_eq!(out.iter().sum::<u64>(), draws);
            for (o, c) in out.iter().zip(&counts) {
                assert!(o <= c, "class over-drawn: {out:?} from {counts:?}");
            }
            assert_eq!(out[1], 0);
            assert_eq!(out[4], 0);
        }
    }

    #[test]
    fn multivariate_hypergeometric_single_class() {
        // q = 1: everything must come from the only class.
        let mut rng = seeded_rng(5);
        let mut out = Vec::new();
        multivariate_hypergeometric(&mut rng, &[9], 6, &mut out);
        assert_eq!(out, vec![6]);
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn multivariate_hypergeometric_rejects_overdraw() {
        let mut rng = seeded_rng(5);
        let mut out = Vec::new();
        multivariate_hypergeometric(&mut rng, &[3, 4], 8, &mut out);
    }

    #[test]
    fn multivariate_marginals_match_univariate_mean() {
        let mut rng = seeded_rng(11);
        let counts = vec![40u64, 60, 100];
        let draws = 30u64;
        let trials = 20_000;
        let mut sums = [0u64; 3];
        let mut out = Vec::new();
        for _ in 0..trials {
            multivariate_hypergeometric(&mut rng, &counts, draws, &mut out);
            for (s, o) in sums.iter_mut().zip(&out) {
                *s += o;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let mean = sums[i] as f64 / trials as f64;
            let expected = draws as f64 * c as f64 / 200.0;
            assert!(
                (mean - expected).abs() < 0.2,
                "class {i}: mean {mean:.2} vs expected {expected:.2}"
            );
        }
    }

    #[test]
    fn no_collision_prefix_probabilities_are_exact_for_short_prefixes() {
        // Q(1) = 1 exactly: the two agents of one interaction are distinct by
        // construction.  The factorial form's cancellation used to leave this
        // at ~±1e-8, occasionally announcing a collision in a block's first
        // interaction (observed as a crash after ~10¹⁰ interactions at
        // n = 10⁶).
        for &n in &[2u64, 3, 1000, 1_000_000, 1_000_000_000] {
            let s = CollisionSampler::new(n);
            assert_eq!(s.ln_no_collision(0), 0.0, "ln Q(0) at n = {n}");
            if n >= 2 {
                assert_eq!(s.ln_no_collision(1), 0.0, "ln Q(1) at n = {n}");
            }
            // Small prefixes match the exact product to full precision.
            let nf = n as f64;
            let mut exact = 0.0f64;
            for t in 2..=(n / 2).min(8) {
                let j = 2 * (t - 1);
                exact += (1.0 - j as f64 / nf).ln() + (1.0 - j as f64 / (nf - 1.0)).ln();
                let got = s.ln_no_collision(t);
                // The reference product uses plain ln(1 − x), itself good to
                // ~1e-11 relative at these magnitudes.
                assert!(
                    (got - exact).abs() <= 1e-9 * exact.abs() + 1e-15,
                    "ln Q({t}) at n = {n}: got {got:e}, exact {exact:e}"
                );
            }
        }
    }

    #[test]
    fn no_collision_prefix_forms_agree_at_the_crossover() {
        // The ln_1p sum (t ≤ 32) and the factorial form (t > 32) must agree
        // where they meet, up to the factorial form's ulp-scale noise.
        for &n in &[10_000u64, 1_000_000, 100_000_000] {
            let s = CollisionSampler::new(n);
            for t in 28..=40u64 {
                let sum_form = {
                    let nf = n as f64;
                    let mut acc = 0.0;
                    for j in 1..t {
                        let jf = (2 * j) as f64;
                        acc += (-jf / nf).ln_1p() + (-jf / (nf - 1.0)).ln_1p();
                    }
                    acc
                };
                let got = s.ln_no_collision(t);
                assert!(
                    (got - sum_form).abs() < 1e-6,
                    "forms disagree at n = {n}, t = {t}: {got:e} vs {sum_form:e}"
                );
            }
        }
    }

    #[test]
    fn collision_batches_are_capped_and_well_formed() {
        let mut rng = seeded_rng(17);
        for &n in &[2u64, 3, 10, 1000] {
            for _ in 0..200 {
                let draw = sample_collision(&mut rng, n, 64);
                let executed = draw.clean + u64::from(draw.collision.is_some());
                assert!(executed <= 64);
                assert!(draw.clean <= n / 2);
                if let Some(c) = draw.collision {
                    assert!(c.initiator_used || c.responder_used);
                    assert!(
                        draw.clean >= 1,
                        "no collision is possible in the first interaction"
                    );
                }
            }
        }
    }

    #[test]
    fn collision_time_matches_birthday_statistics() {
        // Each interaction draws two agents, so the first repeated agent
        // appears after ≈ sqrt(pi n / 2) agent draws, i.e. the first colliding
        // interaction has index T ≈ sqrt(pi n / 2) / 2 for large n.
        let n = 10_000u64;
        let mut rng = seeded_rng(23);
        let trials = 2_000;
        let mut total_t = 0u64;
        for _ in 0..trials {
            let draw = sample_collision(&mut rng, n, u64::MAX);
            assert!(
                draw.collision.is_some(),
                "uncapped batches must end in a collision"
            );
            total_t += draw.clean + 1; // index of the colliding interaction
        }
        let mean = total_t as f64 / trials as f64;
        let expected = (std::f64::consts::PI * n as f64 / 2.0).sqrt() / 2.0; // ≈ 62.7
        assert!(
            (mean - expected).abs() < 0.05 * expected,
            "mean collision index {mean:.1} deviates from birthday expectation {expected:.1}"
        );
    }

    #[test]
    fn hypergeometric_rejection_path_matches_exact_pmf() {
        // σ ≈ 126 > REJECTION_SIGMA: exercises the log-concave rejection
        // sampler, with a per-bin comparison against the exact pmf.
        let (total, success, draws) = (300_000u64, 120_000u64, 100_000u64);
        let sigma = (draws as f64 * 0.4 * 0.6 * (200_000.0 / 299_999.0)).sqrt();
        assert!(sigma > REJECTION_SIGMA, "test must hit the rejection path");
        let mut rng = seeded_rng(53);
        let trials = 100_000usize;
        let mut counts = vec![0u32; draws as usize + 1];
        for _ in 0..trials {
            counts[hypergeometric(&mut rng, total, success, draws) as usize] += 1;
        }
        // Compare every bin within ±5σ of the mean against the exact pmf.
        let mean = draws as f64 * success as f64 / total as f64; // 40000
        let lo = (mean - 5.0 * sigma) as u64;
        let hi = (mean + 5.0 * sigma) as u64;
        for k in lo..=hi {
            let expected = ln_pmf_hypergeometric(total, success, draws, k).exp() * trials as f64;
            let got = f64::from(counts[k as usize]);
            let noise = expected.max(1.0).sqrt();
            assert!(
                (got - expected).abs() < 5.0 * noise + 3.0,
                "k = {k}: got {got}, expected {expected:.1}"
            );
        }
        // And the tails hold everything else (no mass leaked out of range).
        let in_range: u32 = (lo..=hi).map(|k| counts[k as usize]).sum();
        assert!(trials as u32 - in_range < (trials / 1000) as u32);
    }

    #[test]
    fn hypergeometric_rejection_path_large_parameters() {
        // Population-scale draws (σ ≈ 111): mean and variance must match.
        let (total, success, draws) = (10_000_000u64, 3_000_000u64, 100_000u64);
        let mut rng = seeded_rng(59);
        let trials = 20_000;
        let (mut sum, mut sum_sq) = (0f64, 0f64);
        for _ in 0..trials {
            let k = hypergeometric(&mut rng, total, success, draws) as f64;
            sum += k;
            sum_sq += k * k;
        }
        let mean = sum / f64::from(trials);
        let var = sum_sq / f64::from(trials) - mean * mean;
        let expected_mean = 30_000.0;
        let expected_var = draws as f64 * 0.3 * 0.7 * (9_900_000.0 / 9_999_999.0); // ≈ 20790
        let se_mean = (expected_var / f64::from(trials)).sqrt(); // ≈ 1.02
        assert!(
            (mean - expected_mean).abs() < 6.0 * se_mean,
            "empirical mean {mean:.2} too far from {expected_mean}"
        );
        assert!(
            (var - expected_var).abs() < 0.05 * expected_var,
            "empirical variance {var:.0} too far from {expected_var:.0}"
        );
    }

    #[test]
    fn binomial_rejection_path_matches_exact_pmf() {
        // σ ≈ 117 > REJECTION_SIGMA: per-bin check on the rejection path.
        let (trials_per_draw, p) = (60_000u64, 0.35f64);
        assert!((trials_per_draw as f64 * p * (1.0 - p)).sqrt() > REJECTION_SIGMA);
        let mut rng = seeded_rng(61);
        let draws = 100_000usize;
        let mut counts = vec![0u32; trials_per_draw as usize + 1];
        for _ in 0..draws {
            counts[binomial(&mut rng, trials_per_draw, p) as usize] += 1;
        }
        let sigma = (trials_per_draw as f64 * p * (1.0 - p)).sqrt();
        let mean = trials_per_draw as f64 * p;
        for k in (mean - 5.0 * sigma) as u64..=(mean + 5.0 * sigma) as u64 {
            let ln_pmf = ln_choose(trials_per_draw, k)
                + k as f64 * p.ln()
                + (trials_per_draw - k) as f64 * (1.0 - p).ln();
            let expected = ln_pmf.exp() * draws as f64;
            let got = f64::from(counts[k as usize]);
            let noise = expected.max(1.0).sqrt();
            assert!(
                (got - expected).abs() < 5.0 * noise + 3.0,
                "k = {k}: got {got}, expected {expected:.1}"
            );
        }
    }

    #[test]
    fn binomial_degenerate_cases() {
        let mut rng = seeded_rng(31);
        assert_eq!(binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(binomial(&mut rng, 10, 0.0), 0);
        assert_eq!(binomial(&mut rng, 10, 1.0), 10);
        for _ in 0..200 {
            let k = binomial(&mut rng, 7, 0.3);
            assert!(k <= 7);
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn binomial_rejects_invalid_probability() {
        let mut rng = seeded_rng(31);
        let _ = binomial(&mut rng, 10, 1.5);
    }

    #[test]
    fn binomial_mean_and_variance_are_correct() {
        let mut rng = seeded_rng(37);
        let (trials_per_draw, p) = (1000u64, 0.37f64);
        let draws = 20_000;
        let mut sum = 0u64;
        let mut sum_sq = 0f64;
        for _ in 0..draws {
            let k = binomial(&mut rng, trials_per_draw, p);
            sum += k;
            sum_sq += (k as f64) * (k as f64);
        }
        let mean = sum as f64 / draws as f64;
        let expected_mean = trials_per_draw as f64 * p; // 370
        let var = sum_sq / draws as f64 - mean * mean;
        let expected_var = trials_per_draw as f64 * p * (1.0 - p); // 233.1
                                                                   // σ ≈ 15.3, standard error of the mean ≈ 0.108: ±0.6 is ~5.5σ.
        assert!(
            (mean - expected_mean).abs() < 0.6,
            "empirical mean {mean:.2} too far from {expected_mean}"
        );
        assert!(
            (var - expected_var).abs() < 0.1 * expected_var,
            "empirical variance {var:.1} too far from {expected_var:.1}"
        );
    }

    #[test]
    fn binomial_matches_exact_pmf() {
        let (trials_per_draw, p) = (40u64, 0.25f64);
        let mut rng = seeded_rng(41);
        let draws = 50_000usize;
        let mut counts = vec![0u32; trials_per_draw as usize + 1];
        for _ in 0..draws {
            counts[binomial(&mut rng, trials_per_draw, p) as usize] += 1;
        }
        for k in 0..=trials_per_draw {
            let ln_pmf = ln_choose(trials_per_draw, k)
                + k as f64 * p.ln()
                + (trials_per_draw - k) as f64 * (1.0 - p).ln();
            let expected = ln_pmf.exp() * draws as f64;
            let got = f64::from(counts[k as usize]);
            let sigma = expected.max(1.0).sqrt();
            assert!(
                (got - expected).abs() < 5.0 * sigma + 3.0,
                "k = {k}: got {got}, expected {expected:.1}"
            );
        }
    }

    #[test]
    fn multinomial_sums_and_respects_zero_weights() {
        let mut rng = seeded_rng(43);
        let weights: Vec<u128> = vec![10, 0, 30, 60, 0];
        let mut out = Vec::new();
        for trials in [0u64, 1, 17, 5000] {
            multinomial(&mut rng, trials, &weights, &mut out);
            assert_eq!(out.len(), weights.len());
            assert_eq!(out.iter().sum::<u64>(), trials);
            assert_eq!(out[1], 0);
            assert_eq!(out[4], 0);
        }
    }

    #[test]
    fn multinomial_marginals_match_weights() {
        let mut rng = seeded_rng(47);
        // Weights at the sharded engine's scale: pair counts of 10⁹ agents.
        let weights: Vec<u128> = vec![250_000_000_000_000_000, 750_000_000_000_000_000];
        let trials_per_draw = 10_000u64;
        let draws = 2_000;
        let mut sums = [0u64; 2];
        let mut out = Vec::new();
        for _ in 0..draws {
            multinomial(&mut rng, trials_per_draw, &weights, &mut out);
            sums[0] += out[0];
            sums[1] += out[1];
        }
        let mean0 = sums[0] as f64 / draws as f64;
        // Expected 2500, σ ≈ 43.3, standard error ≈ 0.97: ±5 is ~5σ.
        assert!(
            (mean0 - 2500.0).abs() < 5.0,
            "category 0 mean {mean0:.1} too far from 2500"
        );
    }

    #[test]
    #[should_panic(expected = "all-zero weights")]
    fn multinomial_rejects_all_zero_weights() {
        let mut rng = seeded_rng(47);
        let mut out = Vec::new();
        multinomial(&mut rng, 5, &[0, 0], &mut out);
    }

    #[test]
    fn tiny_populations_always_terminate() {
        let mut rng = seeded_rng(29);
        for _ in 0..500 {
            let draw = sample_collision(&mut rng, 2, 10);
            // With n = 2 the single clean interaction uses both agents; the
            // second interaction always collides.
            assert!(draw.clean <= 1);
        }
    }
}
