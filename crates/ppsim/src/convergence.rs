//! Convergence and stabilisation bookkeeping.
//!
//! The paper distinguishes the *convergence time* `T_C` (first interaction after
//! which the system is in a desired configuration and never leaves the set of desired
//! configurations again) from the *stabilisation time* `T_S` (first interaction after
//! which **no** interaction sequence can leave the desired set).  A simulation can
//! measure `T_C` directly (first hit of a monotone predicate, or first hit that holds
//! until the end of a long run) and can probe `T_S` by exhaustively applying all
//! ordered pairs from the reached configuration (see
//! [`AllPairsScheduler`](crate::scheduler::AllPairsScheduler)).

/// The result of driving a simulation towards a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use]
pub enum RunOutcome {
    /// The predicate held at the recorded interaction count.
    Converged {
        /// Number of interactions executed when the predicate was first observed
        /// to hold (measured at the configured check granularity).
        interactions: u64,
    },
    /// The interaction budget was exhausted before the predicate held.
    Exhausted {
        /// The number of interactions the simulator had **actually executed**
        /// when the run gave up.  Usually equal to `budget`, but a simulator
        /// that had already executed interactions before `run_until` was
        /// called (a staged or hybrid run resuming against a total budget)
        /// reports its true counter here instead of pretending the whole
        /// budget was spent.
        interactions: u64,
        /// The interaction budget that was exhausted.
        budget: u64,
    },
}

impl RunOutcome {
    /// Whether the run converged within its budget.
    #[must_use]
    pub fn converged(&self) -> bool {
        matches!(self, RunOutcome::Converged { .. })
    }

    /// The number of interactions at convergence, if the run converged.
    #[must_use]
    pub fn interactions(&self) -> Option<u64> {
        match self {
            RunOutcome::Converged { interactions } => Some(*interactions),
            RunOutcome::Exhausted { .. } => None,
        }
    }

    /// The number of interactions actually executed when the run ended,
    /// whether it converged or exhausted its budget.
    #[must_use]
    pub fn executed(&self) -> u64 {
        match self {
            RunOutcome::Converged { interactions } | RunOutcome::Exhausted { interactions, .. } => {
                *interactions
            }
        }
    }

    /// The number of interactions at convergence.
    ///
    /// # Panics
    ///
    /// Panics if the run did not converge; use in tests and experiments where
    /// non-convergence is itself a failure.
    #[must_use]
    pub fn expect_converged(&self, context: &str) -> u64 {
        match self {
            RunOutcome::Converged { interactions } => *interactions,
            RunOutcome::Exhausted {
                interactions,
                budget,
            } => {
                panic!(
                    "{context}: did not converge within a budget of {budget} interactions \
                     ({interactions} executed)"
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converged_accessors() {
        let o = RunOutcome::Converged { interactions: 1234 };
        assert!(o.converged());
        assert_eq!(o.interactions(), Some(1234));
        assert_eq!(o.executed(), 1234);
        assert_eq!(o.expect_converged("test"), 1234);
    }

    #[test]
    fn exhausted_accessors() {
        let o = RunOutcome::Exhausted {
            interactions: 9,
            budget: 10,
        };
        assert!(!o.converged());
        assert_eq!(o.interactions(), None);
        assert_eq!(
            o.executed(),
            9,
            "exhaustion reports actual work, not the budget"
        );
    }

    #[test]
    #[should_panic(expected = "did not converge")]
    fn expect_converged_panics_on_exhaustion() {
        let _ = RunOutcome::Exhausted {
            interactions: 10,
            budget: 10,
        }
        .expect_converged("test");
    }
}
