//! Engine selection: one name for "run this dense protocol on a population
//! of `n`", whichever simulator serves that regime best.
//!
//! Four engines drive the same stochastic process:
//!
//! | engine | representation | sweet spot |
//! |---|---|---|
//! | [`Engine::Sequential`] | per-agent `Vec<State>` | `n ≲ 3·10³` (no per-block overhead) |
//! | [`Engine::Batched`] | state counts, `Θ(√n)` collision-free blocks | `3·10³ ≲ n ≲ 10⁷` |
//! | [`Engine::Sharded`] | counts split over `S` shards, epoch-parallel | `n ≳ 10⁷`, multicore |
//! | [`Engine::Hybrid`] | counts ↔ per-agent, auto-switching on occupancy | dynamic protocols whose state census blows up mid-run |
//!
//! [`Engine::Auto`] picks sequential below [`SEQUENTIAL_CROSSOVER`] (where
//! the measured batched speedup in `BENCH_batched.json` drops under 1×); at
//! and above it the resolution is **protocol-aware**
//! ([`Engine::resolve_for`]): dynamic (interned) protocols get the hybrid
//! engine — their occupancy profile can change mid-run, which is exactly the
//! signal the hybrid monitor watches — while statically encoded protocols
//! keep the batched engine.  [`DenseSimulator`] is the enum-dispatched
//! simulator the experiment harness and benchmark tooling drive, so engine
//! choice is a CLI argument rather than a code path.

use crate::batched::BatchedSimulator;
use crate::config::ConfigurationStats;
use crate::convergence::RunOutcome;
use crate::dense::{DenseAdapter, DenseProtocol};
use crate::error::SimError;
use crate::hybrid::{HybridLegs, HybridSimulator};
use crate::sharded::{ShardedBatchedSimulator, ShardedConfig};
use crate::simulator::Simulator;
use crate::snapshot::{
    Checkpointable, EngineSnapshot, PersistState, ENGINE_DENSE_SEQUENTIAL, ENGINE_SEQUENTIAL,
};

use rand::rngs::SmallRng;
use rand::Rng;

/// Population size below which the sequential engine out-runs the batched
/// one: per-interaction cost beats per-block overhead while blocks are short
/// (`BENCH_batched.json` measures batched at 0.56× sequential at `n = 10³`
/// and 2.9× at `n = 10⁴`; the crossing sits near 3·10³).
pub const SEQUENTIAL_CROSSOVER: usize = 3_000;

/// Which simulation engine to run a dense protocol on.
///
/// # Examples
///
/// [`Engine::Auto`] resolves against the population size and constructs the
/// winning engine through [`DenseSimulator`]:
///
/// ```rust
/// use ppsim::{DenseProtocol, DenseSimulator, Engine};
///
/// #[derive(Clone)]
/// struct Rumor;
/// impl DenseProtocol for Rumor {
///     type Output = bool;
///     fn num_states(&self) -> usize { 2 }
///     fn initial_state(&self) -> usize { 0 }
///     fn transition(&self, u: usize, v: usize) -> (usize, usize) { (u.max(v), v) }
///     fn output(&self, s: usize) -> bool { s == 1 }
/// }
///
/// # fn main() -> Result<(), ppsim::SimError> {
/// assert_eq!(Engine::Auto.resolve(100), Engine::Sequential);
/// assert_eq!(Engine::Auto.resolve(1_000_000), Engine::Batched);
///
/// let mut sim = DenseSimulator::new(Engine::Auto, Rumor, 50_000, 42)?;
/// assert_eq!(sim.engine_name(), "batched");
/// sim.transfer(0, 1, 1)?;
/// let outcome = sim.run_until(|s| s.count_of(1) == s.population(), 50_000, u64::MAX >> 1);
/// assert!(outcome.converged());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The per-agent sequential engine ([`Simulator`] over [`DenseAdapter`]).
    Sequential,
    /// The single-threaded batched count-based engine ([`BatchedSimulator`]).
    Batched,
    /// The sharded batched engine ([`ShardedBatchedSimulator`]).
    Sharded {
        /// Number of shards (see [`ShardedConfig::shards`]).
        shards: usize,
        /// Worker threads; `0` = available parallelism
        /// (see [`ShardedConfig::threads`]).
        threads: usize,
    },
    /// The auto-switching hybrid engine ([`HybridSimulator`], batched
    /// substrate, default occupancy monitor).
    Hybrid,
    /// Choose automatically from the population size and the protocol:
    /// sequential below [`SEQUENTIAL_CROSSOVER`]; at and above it, hybrid
    /// for dynamic (interned) protocols and batched for static encodings
    /// (see [`Engine::resolve_for`]).
    Auto,
}

impl Engine {
    /// Resolve [`Engine::Auto`] against a population size alone, assuming a
    /// statically encoded protocol; concrete choices pass through unchanged.
    ///
    /// Prefer [`Engine::resolve_for`] when the protocol is at hand —
    /// [`DenseSimulator::new`] resolves through it, so dynamic protocols get
    /// the hybrid engine.
    #[must_use]
    pub fn resolve(self, n: usize) -> Engine {
        self.resolve_for(n, false)
    }

    /// Resolve [`Engine::Auto`] against a population size and the protocol's
    /// [`dynamic`](DenseProtocol::dynamic) flag; concrete choices pass
    /// through unchanged.
    ///
    /// Dynamic (interned) protocols above the crossover get
    /// [`Engine::Hybrid`]: their realised state space grows with the run, so
    /// a representation chosen up front can degenerate mid-run — the hybrid
    /// engine's occupancy monitor handles exactly that.  Static encodings
    /// keep [`Engine::Batched`] (their occupancy is bounded by a `q` known
    /// up front, and the caller opts into [`Engine::Sharded`] explicitly).
    #[must_use]
    pub fn resolve_for(self, n: usize, dynamic: bool) -> Engine {
        match self {
            Engine::Auto => {
                if n < SEQUENTIAL_CROSSOVER {
                    Engine::Sequential
                } else if dynamic {
                    Engine::Hybrid
                } else {
                    Engine::Batched
                }
            }
            concrete => concrete,
        }
    }

    /// A short stable name for reports and JSON output.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Engine::Sequential => "sequential",
            Engine::Batched => "batched",
            Engine::Sharded { .. } => "sharded",
            Engine::Hybrid => "hybrid",
            Engine::Auto => "auto",
        }
    }
}

/// A dense protocol running on whichever engine [`Engine`] selected, behind
/// one driving surface.
///
/// The protocol bound is the union of the engines' needs (`Clone + Send` for
/// the sharded engine's per-shard copies).  Convergence predicates receive
/// `&DenseSimulator`, so the same experiment code drives all three engines;
/// note that [`Self::count_of`] and [`Self::counts`] scan the per-agent
/// state vector in `O(n)` on the sequential engine — cheap in exactly the
/// small-`n` regime that engine is for.
#[derive(Debug, Clone)]
pub enum DenseSimulator<P: DenseProtocol + Clone + Send> {
    /// Sequential per-agent execution.
    Sequential(Simulator<DenseAdapter<P>>),
    /// Batched count-based execution.
    Batched(BatchedSimulator<P>),
    /// Sharded batched execution.
    Sharded(ShardedBatchedSimulator<P>),
    /// Hybrid dense ↔ per-agent execution (boxed: the hybrid simulator
    /// carries both representations' bookkeeping and would otherwise
    /// dominate the enum's size).
    Hybrid(Box<HybridSimulator<P>>),
}

impl<P: DenseProtocol + Clone + Send + 'static> DenseSimulator<P> {
    /// Create a simulator for `n` agents on the engine `engine` resolves to.
    ///
    /// # Errors
    ///
    /// Propagates the selected engine's constructor errors
    /// ([`SimError::PopulationTooSmall`], [`SimError::InvalidParameter`]).
    pub fn new(engine: Engine, protocol: P, n: usize, seed: u64) -> Result<Self, SimError> {
        match engine.resolve_for(n, protocol.dynamic()) {
            Engine::Sequential => Ok(DenseSimulator::Sequential(Simulator::new(
                DenseAdapter(protocol),
                n,
                seed,
            )?)),
            Engine::Batched => Ok(DenseSimulator::Batched(BatchedSimulator::new(
                protocol, n, seed,
            )?)),
            Engine::Sharded { shards, threads } => {
                Ok(DenseSimulator::Sharded(ShardedBatchedSimulator::new(
                    protocol,
                    n,
                    seed,
                    ShardedConfig {
                        shards,
                        threads,
                        epoch_interactions: None,
                    },
                )?))
            }
            Engine::Hybrid => Ok(DenseSimulator::Hybrid(Box::new(HybridSimulator::new(
                protocol, n, seed,
            )?))),
            Engine::Auto => unreachable!("resolve_for() never returns Auto"),
        }
    }

    /// Run `f` over the configuration's state counts, borrowing them in
    /// place on the engines that already store the configuration densely —
    /// unlike [`Self::counts`], which copies a capacity-sized vector (tens
    /// of MB for large interned protocols).  The sequential engine (and the
    /// hybrid engine in its per-agent mode) assembles a temporary.
    pub fn with_counts<R>(&self, f: impl FnOnce(&[u64]) -> R) -> R {
        match self {
            DenseSimulator::Sequential(_) => f(&self.counts()),
            DenseSimulator::Batched(s) => f(s.counts()),
            DenseSimulator::Sharded(s) => f(s.counts()),
            DenseSimulator::Hybrid(s) => match s.as_dense_counts() {
                Some(counts) => f(counts),
                None => f(&s.counts()),
            },
        }
    }

    /// The hybrid engine's representation migrations as total-interaction
    /// counts, in order; empty on every other engine.  The benchmark tooling
    /// emits these as the measured switch points.
    #[must_use]
    pub fn switch_points(&self) -> Vec<u64> {
        match self {
            DenseSimulator::Hybrid(s) => s.switches().iter().map(|e| e.interactions).collect(),
            _ => Vec::new(),
        }
    }

    /// Per-leg accounting of the hybrid engine ([`HybridLegs`]: interaction
    /// counts, wall-clock seconds and the stint kind per representation).
    /// `None` on every other engine (they have a single leg, reported by the
    /// overall counters).  The bench tooling turns this into the per-leg
    /// throughput columns (`dense_mips`, `agent_mips`).
    #[must_use]
    pub fn hybrid_legs(&self) -> Option<HybridLegs> {
        match self {
            DenseSimulator::Hybrid(s) => Some(s.legs()),
            _ => None,
        }
    }

    /// The engine actually running, as its stable report name.
    #[must_use]
    pub fn engine_name(&self) -> &'static str {
        match self {
            DenseSimulator::Sequential(_) => "sequential",
            DenseSimulator::Batched(_) => "batched",
            DenseSimulator::Sharded(_) => "sharded",
            DenseSimulator::Hybrid(_) => "hybrid",
        }
    }

    /// The population size `n`.
    #[must_use]
    pub fn population(&self) -> u64 {
        match self {
            DenseSimulator::Sequential(s) => s.population() as u64,
            DenseSimulator::Batched(s) => s.population(),
            DenseSimulator::Sharded(s) => s.population(),
            DenseSimulator::Hybrid(s) => s.population(),
        }
    }

    /// The number of interactions executed so far.
    #[must_use]
    pub fn interactions(&self) -> u64 {
        match self {
            DenseSimulator::Sequential(s) => s.interactions(),
            DenseSimulator::Batched(s) => s.interactions(),
            DenseSimulator::Sharded(s) => s.interactions(),
            DenseSimulator::Hybrid(s) => s.interactions(),
        }
    }

    /// Number of agents currently in state `state` (`O(q)` on the counts
    /// engines, `O(n)` on the sequential one).
    #[must_use]
    pub fn count_of(&self, state: usize) -> u64 {
        match self {
            DenseSimulator::Sequential(s) => s
                .states()
                .iter()
                .filter(|&&st| st as usize == state)
                .count() as u64,
            DenseSimulator::Batched(s) => s.count_of(state),
            DenseSimulator::Sharded(s) => s.count_of(state),
            DenseSimulator::Hybrid(s) => s.count_of(state),
        }
    }

    /// The configuration as state counts (owned; assembled by scanning on
    /// the sequential engine).
    #[must_use]
    pub fn counts(&self) -> Vec<u64> {
        match self {
            DenseSimulator::Sequential(s) => {
                let mut counts = vec![0u64; s.protocol().0.num_states()];
                for &st in s.states() {
                    counts[st as usize] += 1;
                }
                counts
            }
            DenseSimulator::Batched(s) => s.counts().to_vec(),
            DenseSimulator::Sharded(s) => s.counts().to_vec(),
            DenseSimulator::Hybrid(s) => s.counts(),
        }
    }

    /// Output histogram of the current configuration.
    #[must_use]
    pub fn output_stats(&self) -> ConfigurationStats<P::Output> {
        match self {
            DenseSimulator::Sequential(s) => s.output_stats(),
            DenseSimulator::Batched(s) => s.output_stats(),
            DenseSimulator::Sharded(s) => s.output_stats(),
            DenseSimulator::Hybrid(s) => s.output_stats(),
        }
    }

    /// Move `k` agents from state `from` to state `to` (experiment setup).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] if either state is out of range
    /// or fewer than `k` agents are in `from`.
    pub fn transfer(&mut self, from: usize, to: usize, k: u64) -> Result<(), SimError> {
        match self {
            DenseSimulator::Sequential(s) => {
                let q = s.protocol().0.num_states();
                if from >= q || to >= q {
                    return Err(SimError::InvalidParameter {
                        name: "transfer",
                        reason: format!("states ({from}, {to}) outside the state space 0..{q}"),
                    });
                }
                let available = s.states().iter().filter(|&&st| st as usize == from).count() as u64;
                if available < k {
                    return Err(SimError::InvalidParameter {
                        name: "transfer",
                        reason: format!(
                            "cannot move {k} agents out of state {from} holding {available}"
                        ),
                    });
                }
                let mut moved = 0u64;
                for st in s.states_mut() {
                    if moved == k {
                        break;
                    }
                    if *st as usize == from {
                        *st = to as u32;
                        moved += 1;
                    }
                }
                Ok(())
            }
            DenseSimulator::Batched(s) => s.transfer(from, to, k),
            DenseSimulator::Sharded(s) => s.transfer(from, to, k),
            DenseSimulator::Hybrid(s) => s.transfer(from, to, k),
        }
    }

    /// The protocol's state-space size `q` (capacity for dynamic protocols).
    #[must_use]
    pub fn num_states(&self) -> usize {
        match self {
            DenseSimulator::Sequential(s) => s.protocol().0.num_states(),
            DenseSimulator::Batched(s) => s.num_states(),
            DenseSimulator::Sharded(s) => s.num_states(),
            DenseSimulator::Hybrid(s) => s.num_states(),
        }
    }

    /// Replace the whole configuration — the entry point of adversarial
    /// initialization ([`crate::adversary::InitStrategy`]).  The sequential
    /// engine rewrites its per-agent states in state-index order (the same
    /// fixed layout the hybrid hand-off uses); the counts engines swap their
    /// count vectors.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] if `counts` has the wrong
    /// length or does not sum to the population size.
    pub fn set_counts(&mut self, counts: Vec<u64>) -> Result<(), SimError> {
        match self {
            DenseSimulator::Sequential(s) => {
                let q = s.protocol().0.num_states();
                if counts.len() != q {
                    return Err(SimError::InvalidParameter {
                        name: "counts",
                        reason: format!("expected {q} state counts, got {}", counts.len()),
                    });
                }
                let n = s.population() as u64;
                let total: u64 = counts.iter().sum();
                if total != n {
                    return Err(SimError::InvalidParameter {
                        name: "counts",
                        reason: format!("counts sum to {total}, the population is {n}"),
                    });
                }
                let mut slots = s.states_mut().iter_mut();
                for (state, &c) in counts.iter().enumerate() {
                    for _ in 0..c {
                        let Some(slot) = slots.next() else {
                            return Err(SimError::InvalidParameter {
                                name: "counts",
                                reason: format!(
                                    "counts sum to {total} but only {n} agent slots exist"
                                ),
                            });
                        };
                        *slot = state as u32;
                    }
                }
                Ok(())
            }
            DenseSimulator::Batched(s) => s.set_counts(counts),
            DenseSimulator::Sharded(s) => s.set_counts(counts),
            DenseSimulator::Hybrid(s) => s.set_counts(counts),
        }
    }

    /// Corrupt `k` agents chosen uniformly without replacement: each
    /// victim's state is replaced by `new_state(current, rng)` — transient
    /// fault injection ([`crate::adversary::FaultPlan`]), exact in every
    /// representation (count mass moves, shard-split draws, native-struct
    /// overwrites through the codec).
    ///
    /// All randomness comes from the caller's `rng`; the engine's own
    /// scheduling streams are untouched.  On the hybrid engine the occupancy
    /// monitor's in-progress streak is discarded.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] if `k` exceeds the population
    /// or `new_state` returns a state outside the state space.
    pub fn corrupt(
        &mut self,
        k: u64,
        rng: &mut SmallRng,
        new_state: &mut dyn FnMut(usize, &mut SmallRng) -> usize,
    ) -> Result<(), SimError> {
        match self {
            DenseSimulator::Sequential(s) => {
                let q = s.protocol().0.num_states();
                let n = s.population();
                if k > n as u64 {
                    return Err(SimError::InvalidParameter {
                        name: "corrupt",
                        reason: format!("cannot corrupt {k} of {n} agents"),
                    });
                }
                // Partial Fisher–Yates: after `k` swap steps the prefix of
                // `idx` is a uniform k-subset of the agents.
                let mut idx: Vec<usize> = (0..n).collect();
                for v in 0..k as usize {
                    let swap = v + rng.gen_range(0..n - v);
                    idx.swap(v, swap);
                    let victim = idx[v];
                    let current = s.states()[victim] as usize;
                    let to = new_state(current, rng);
                    if to >= q {
                        return Err(SimError::InvalidParameter {
                            name: "corrupt",
                            reason: format!("target state {to} outside the state space 0..{q}"),
                        });
                    }
                    s.states_mut()[victim] = to as u32;
                }
                Ok(())
            }
            DenseSimulator::Batched(s) => s.corrupt(k, rng, new_state),
            DenseSimulator::Sharded(s) => s.corrupt(k, rng, new_state),
            DenseSimulator::Hybrid(s) => s.corrupt(k, rng, new_state),
        }
    }

    /// Reset any convergence-probing state that predates a fault event: on
    /// the hybrid engine this discards the occupancy monitor's in-progress
    /// observation streak; the other engines carry no such state and this is
    /// a no-op.  [`crate::adversary::AdversarialRun`] calls this at every
    /// injection.
    pub fn reset_monitor(&mut self) {
        if let DenseSimulator::Hybrid(s) = self {
            s.reset_monitor();
        }
    }

    /// Execute `budget` further interactions unconditionally.
    pub fn run(&mut self, budget: u64) {
        match self {
            DenseSimulator::Sequential(s) => s.run(budget),
            DenseSimulator::Batched(s) => s.run(budget),
            DenseSimulator::Sharded(s) => s.run(budget),
            DenseSimulator::Hybrid(s) => s.run(budget),
        }
    }

    /// Run until `pred` holds (checked every `check_every` interactions, and
    /// once before the first step) or until `max_interactions` *total*
    /// interactions have been executed — the shared `run_until` contract of
    /// the three engines.
    pub fn run_until<F>(
        &mut self,
        mut pred: F,
        check_every: u64,
        max_interactions: u64,
    ) -> RunOutcome
    where
        F: FnMut(&Self) -> bool,
    {
        let check_every = check_every.max(1);
        if pred(self) {
            return RunOutcome::Converged {
                interactions: self.interactions(),
            };
        }
        while self.interactions() < max_interactions {
            let chunk = check_every.min(max_interactions - self.interactions());
            self.run(chunk);
            if pred(self) {
                return RunOutcome::Converged {
                    interactions: self.interactions(),
                };
            }
        }
        RunOutcome::Exhausted {
            interactions: self.interactions(),
            budget: max_interactions,
        }
    }
}

/// Checkpointing through the engine-dispatch layer: each variant forwards to
/// its engine's [`Checkpointable`] implementation, so a `DenseSimulator`
/// snapshot carries the underlying engine's tag — restoring it into a
/// `DenseSimulator` running a *different* engine fails with
/// [`SimError::SnapshotMismatch`] (trajectories are engine-specific, so a
/// cross-engine restore could never replay bit-identically).
///
/// The sequential variant is the one exception: its inner
/// [`Simulator`] snapshot knows nothing about the dense protocol, whose
/// interner contents are part of a dynamic protocol's trajectory.  It
/// therefore wraps the sequential payload under
/// [`ENGINE_DENSE_SEQUENTIAL`]
/// together with the protocol state:
///
/// ```text
/// Vec<u8>   protocol state (DenseProtocol::save_protocol_state)
/// Vec<u8>   inner sequential-engine payload
/// ```
impl<P: DenseProtocol + Clone + Send + 'static> Checkpointable for DenseSimulator<P> {
    fn save_state(&self) -> EngineSnapshot {
        match self {
            DenseSimulator::Sequential(s) => {
                let mut payload = Vec::new();
                s.protocol().0.save_protocol_state().persist(&mut payload);
                s.save_state().payload().to_vec().persist(&mut payload);
                EngineSnapshot::new(ENGINE_DENSE_SEQUENTIAL, payload)
            }
            DenseSimulator::Batched(s) => s.save_state(),
            DenseSimulator::Sharded(s) => s.save_state(),
            DenseSimulator::Hybrid(s) => s.save_state(),
        }
    }

    fn restore_state(&mut self, snapshot: &EngineSnapshot) -> Result<(), SimError> {
        match self {
            DenseSimulator::Sequential(s) => {
                snapshot.expect_engine(ENGINE_DENSE_SEQUENTIAL, "the sequential engine")?;
                let mut r = snapshot.reader();
                let protocol_bytes = r.read::<Vec<u8>>()?;
                let inner_bytes = r.read::<Vec<u8>>()?;
                r.finish()?;
                s.protocol().0.restore_protocol_state(&protocol_bytes)?;
                s.restore_state(&EngineSnapshot::new(ENGINE_SEQUENTIAL, inner_bytes))
            }
            DenseSimulator::Batched(s) => s.restore_state(snapshot),
            DenseSimulator::Sharded(s) => s.restore_state(snapshot),
            DenseSimulator::Hybrid(s) => s.restore_state(snapshot),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy)]
    struct Rumor;
    impl DenseProtocol for Rumor {
        type Output = bool;
        fn num_states(&self) -> usize {
            2
        }
        fn initial_state(&self) -> usize {
            0
        }
        fn transition(&self, u: usize, v: usize) -> (usize, usize) {
            (u.max(v), v)
        }
        fn output(&self, s: usize) -> bool {
            s == 1
        }
    }

    #[test]
    fn auto_picks_sequential_below_the_crossover_and_batched_above() {
        // Pins the measured heuristic: BENCH_batched.json has batched at
        // 0.56× sequential at n = 10³ and 2.9× at n = 10⁴.
        assert_eq!(Engine::Auto.resolve(1_000), Engine::Sequential);
        assert_eq!(
            Engine::Auto.resolve(SEQUENTIAL_CROSSOVER - 1),
            Engine::Sequential
        );
        assert_eq!(Engine::Auto.resolve(SEQUENTIAL_CROSSOVER), Engine::Batched);
        assert_eq!(Engine::Auto.resolve(1_000_000), Engine::Batched);
        // Concrete engines pass through untouched.
        assert_eq!(Engine::Batched.resolve(10), Engine::Batched);
        let sharded = Engine::Sharded {
            shards: 4,
            threads: 2,
        };
        assert_eq!(sharded.resolve(10_000_000), sharded);
    }

    #[test]
    fn auto_resolution_matrix_is_protocol_aware() {
        // The full (n, dynamic) → engine matrix of Engine::Auto:
        //
        //                  | static          | dynamic
        //   n < crossover  | Sequential      | Sequential
        //   n ≥ crossover  | Batched         | Hybrid
        for dynamic in [false, true] {
            assert_eq!(
                Engine::Auto.resolve_for(SEQUENTIAL_CROSSOVER - 1, dynamic),
                Engine::Sequential,
                "below the crossover the per-agent engine always wins"
            );
        }
        assert_eq!(
            Engine::Auto.resolve_for(SEQUENTIAL_CROSSOVER, false),
            Engine::Batched
        );
        assert_eq!(
            Engine::Auto.resolve_for(SEQUENTIAL_CROSSOVER, true),
            Engine::Hybrid
        );
        assert_eq!(Engine::Auto.resolve_for(1_000_000, true), Engine::Hybrid);
        // `resolve` is the static-protocol shorthand.
        assert_eq!(Engine::Auto.resolve(1_000_000), Engine::Batched);
        // Concrete engines ignore the dynamic flag entirely.
        for engine in [
            Engine::Sequential,
            Engine::Batched,
            Engine::Hybrid,
            Engine::Sharded {
                shards: 2,
                threads: 1,
            },
        ] {
            assert_eq!(engine.resolve_for(1_000_000, true), engine);
            assert_eq!(engine.resolve_for(100, false), engine);
        }
    }

    #[test]
    fn auto_constructs_the_resolved_engine() {
        let small = DenseSimulator::new(Engine::Auto, Rumor, 100, 0).unwrap();
        assert_eq!(small.engine_name(), "sequential");
        let big = DenseSimulator::new(Engine::Auto, Rumor, 100_000, 0).unwrap();
        assert_eq!(big.engine_name(), "batched");
    }

    /// A dynamic shim over the two-state rumour: same transitions, but
    /// flagged as interned so Auto resolution routes it to the hybrid engine.
    #[derive(Debug, Clone, Copy)]
    struct DynamicRumor;
    impl DenseProtocol for DynamicRumor {
        type Output = bool;
        fn num_states(&self) -> usize {
            2
        }
        fn initial_state(&self) -> usize {
            0
        }
        fn transition(&self, u: usize, v: usize) -> (usize, usize) {
            (u.max(v), v)
        }
        fn output(&self, s: usize) -> bool {
            s == 1
        }
        fn dynamic(&self) -> bool {
            true
        }
    }

    #[test]
    fn auto_routes_dynamic_protocols_to_the_hybrid_engine() {
        let sim = DenseSimulator::new(Engine::Auto, DynamicRumor, 100_000, 0).unwrap();
        assert_eq!(sim.engine_name(), "hybrid");
        let small = DenseSimulator::new(Engine::Auto, DynamicRumor, 100, 0).unwrap();
        assert_eq!(small.engine_name(), "sequential");
    }

    #[test]
    fn switch_points_are_empty_off_the_hybrid_engine() {
        let sim = DenseSimulator::new(Engine::Batched, Rumor, 5_000, 0).unwrap();
        assert!(sim.switch_points().is_empty());
        let mut hybrid = DenseSimulator::new(Engine::Hybrid, Rumor, 5_000, 0).unwrap();
        hybrid.transfer(0, 1, 1).unwrap();
        hybrid.run(10_000);
        assert!(
            hybrid.switch_points().is_empty(),
            "the two-state epidemic never leaves dense mode"
        );
    }

    #[test]
    fn every_engine_runs_the_same_epidemic_to_saturation() {
        for engine in [
            Engine::Sequential,
            Engine::Batched,
            Engine::Sharded {
                shards: 4,
                threads: 1,
            },
            Engine::Hybrid,
        ] {
            let mut sim = DenseSimulator::new(engine, Rumor, 2000, 7).unwrap();
            assert_eq!(sim.population(), 2000);
            sim.transfer(0, 1, 1).unwrap();
            assert_eq!(sim.count_of(1), 1);
            let outcome = sim.run_until(|s| s.count_of(1) == 2000, 2000, u64::MAX >> 1);
            assert!(outcome.converged(), "{} failed", engine.name());
            assert_eq!(sim.counts(), vec![0, 2000]);
            assert_eq!(sim.output_stats().count_of(&true), 2000);
        }
    }

    #[test]
    fn transfer_validates_on_every_engine() {
        for engine in [Engine::Sequential, Engine::Batched] {
            let mut sim = DenseSimulator::new(engine, Rumor, 10, 0).unwrap();
            assert!(sim.transfer(0, 1, 11).is_err(), "{}", engine.name());
            assert!(sim.transfer(0, 7, 1).is_err(), "{}", engine.name());
            assert!(sim.transfer(0, 1, 3).is_ok());
            assert_eq!(sim.count_of(1), 3);
        }
    }

    #[test]
    fn snapshots_round_trip_on_every_engine_and_reject_cross_engine_restores() {
        let engines = [
            Engine::Sequential,
            Engine::Batched,
            Engine::Sharded {
                shards: 4,
                threads: 1,
            },
            Engine::Hybrid,
        ];
        for engine in engines {
            let mut reference = DenseSimulator::new(engine, Rumor, 2_000, 7).unwrap();
            reference.transfer(0, 1, 1).unwrap();
            reference.run(5_000);
            reference.run(2_003);

            let mut victim = DenseSimulator::new(engine, Rumor, 2_000, 7).unwrap();
            victim.transfer(0, 1, 1).unwrap();
            victim.run(5_000);
            let bytes = victim.save_state().to_bytes();
            drop(victim);

            let mut resumed = DenseSimulator::new(engine, Rumor, 2_000, 0).unwrap();
            let snap = EngineSnapshot::from_bytes(&bytes).unwrap();
            resumed.restore_state(&snap).unwrap();
            resumed.run(2_003);
            assert_eq!(
                resumed.save_state().to_bytes(),
                reference.save_state().to_bytes(),
                "{} resume diverged",
                engine.name()
            );
        }

        // Cross-engine restores are rejected: the tags differ.
        let sequential = DenseSimulator::new(Engine::Sequential, Rumor, 2_000, 7).unwrap();
        let snap = sequential.save_state();
        let mut batched = DenseSimulator::new(Engine::Batched, Rumor, 2_000, 7).unwrap();
        assert!(matches!(
            batched.restore_state(&snap),
            Err(SimError::SnapshotMismatch { .. })
        ));
    }

    #[test]
    fn run_until_checks_before_the_first_step() {
        let mut sim = DenseSimulator::new(Engine::Sequential, Rumor, 50, 1).unwrap();
        let outcome = sim.run_until(|_| true, 10, 1000);
        assert_eq!(outcome, RunOutcome::Converged { interactions: 0 });
        let outcome = sim.run_until(|_| false, 7, 100);
        assert_eq!(
            outcome,
            RunOutcome::Exhausted {
                interactions: 100,
                budget: 100
            }
        );
        assert_eq!(sim.interactions(), 100);
    }
}
