//! # `ppsim` — a simulator for the probabilistic population-protocol model
//!
//! This crate implements the computation model used by the paper
//! *On Counting the Population Size* (Berenbrink, Kaaser, Radzik — PODC 2019):
//! a population of `n` anonymous agents, each holding a state from a common state
//! space, interacting in ordered pairs `(initiator, responder)` chosen independently
//! and uniformly at random in every discrete time step.  During an interaction both
//! agents update their states according to a transition function that is *common to
//! all agents* and — for uniform protocols — does not depend on `n`.
//!
//! The crate provides:
//!
//! * the [`Protocol`] trait describing a population protocol (transition function,
//!   initial state, output function),
//! * [`Scheduler`] implementations, most importantly the uniformly random scheduler
//!   of the probabilistic model ([`UniformScheduler`]),
//! * the [`Simulator`] driving a single execution, with convergence detection,
//! * the **batched count-based engine** [`BatchedSimulator`] for protocols with an
//!   enumerable state space ([`DenseProtocol`]): it stores the configuration as
//!   state counts and advances whole collision-free blocks of `Θ(√n)` interactions
//!   in `O(q²)` work via exact hypergeometric sampling ([`sample`]) — the engine of
//!   choice for populations of 10⁵ agents and beyond,
//! * the **sharded batched engine** [`ShardedBatchedSimulator`]: the counts split
//!   over `S` shards advancing epoch-parallel on worker threads, with exact bulk
//!   resolution of cross-shard interactions and uniform rebalancing — the engine
//!   for populations of 10⁷ to 10⁹ agents (see [`sharded`] for the exactness
//!   discussion),
//! * the **hybrid engine** [`HybridSimulator`]: the batched/sharded substrate
//!   while the occupancy stays low, transparent migration to per-agent
//!   simulation (and back) when an occupancy monitor with hysteresis detects
//!   that the count representation has gone degenerate — the engine for
//!   dynamic (interned) protocols whose state census blows up mid-run, such
//!   as the `CountExact` refinement stage ([`hybrid`]); protocols carrying a
//!   typed agent-state codec ([`AgentCodec`], [`stint`]) run their per-agent
//!   stints on **native structs** with no interner traffic in the hot loop,
//! * an engine-selection layer ([`Engine`], [`DenseSimulator`]) with a
//!   measured, protocol-aware auto heuristic, so harness code picks engines
//!   by argument, not by code path,
//! * a **checkpoint/resume layer** ([`snapshot`]): a versioned, CRC-checked
//!   binary snapshot format and the [`Checkpointable`] trait implemented by
//!   all four engines, with bit-identical deterministic replay after restore,
//!   plus the fault-injection harness ([`faultsim`]) that verifies it,
//! * an **adversarial fault model** ([`adversary`]): arbitrary and worst-case
//!   initializations, deterministic fault plans (state corruption, agent
//!   silencing) injected exactly in every representation, and recovery-time
//!   probing for self-stabilization experiments,
//! * measurement utilities ([`metrics`]) such as empirical state-space tracking,
//! * a multi-threaded independent-trial runner ([`parallel`]) for parameter sweeps.
//!
//! # Quick example
//!
//! ```rust
//! use ppsim::{Protocol, Simulator};
//! use rand::rngs::SmallRng;
//!
//! /// One-way epidemic: a single `1` spreads to the whole population.
//! struct Epidemic;
//!
//! impl Protocol for Epidemic {
//!     type State = u8;
//!     type Output = u8;
//!     fn initial_state(&self) -> u8 { 0 }
//!     fn interact(&self, u: &mut u8, v: &mut u8, _rng: &mut SmallRng) {
//!         let m = (*u).max(*v);
//!         *u = m;
//!         *v = m;
//!     }
//!     fn output(&self, s: &u8) -> u8 { *s }
//! }
//!
//! # fn main() -> Result<(), ppsim::SimError> {
//! let mut sim = Simulator::new(Epidemic, 100, 42)?;
//! sim.states_mut()[0] = 1; // plant the rumour
//! let outcome = sim.run_until(|sim| sim.states().iter().all(|&s| s == 1), 100, 1_000_000);
//! assert!(outcome.converged());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod batched;
mod block;
pub mod config;
pub mod conformance;
pub mod convergence;
pub mod dense;
pub mod engine;
pub mod error;
pub mod faultsim;
pub mod hybrid;
pub mod interned;
pub mod metrics;
pub mod parallel;
pub mod protocol;
pub mod rng;
pub mod sample;
pub mod scheduler;
pub mod sharded;
pub mod simulator;
pub mod snapshot;
pub mod stint;

pub use adversary::{
    reconvergence_time, AdversarialRun, CorruptionTarget, FaultEvent, FaultKind, FaultPlan,
    InitStrategy, RecoveryRecord, WorstCaseReport, WorstCaseSearch,
};
pub use batched::BatchedSimulator;
pub use config::ConfigurationStats;
pub use conformance::{
    pair_quantity, run_cell, run_matrix, BoundCell, CellResult, ConservationLaw, ConservedQuantity,
    MatrixSummary, ProtocolInvariants, Scenario,
};
pub use convergence::RunOutcome;
pub use dense::{DenseAdapter, DenseProtocol};
pub use engine::{DenseSimulator, Engine, SEQUENTIAL_CROSSOVER};
pub use error::SimError;
pub use hybrid::{
    HybridConfig, HybridLegs, HybridSimulator, HybridSubstrate, OccupancyMonitor, SwitchDirection,
    SwitchEvent,
};
pub use interned::StateInterner;
pub use metrics::{StateSpaceTracker, TimeSeries};
pub use parallel::{run_trials, run_trials_with_threads};
pub use protocol::Protocol;
pub use rng::{derive_seed, seeded_rng};
pub use scheduler::{AllPairsScheduler, Scheduler, UniformScheduler};
pub use sharded::{ShardedBatchedSimulator, ShardedConfig};
pub use simulator::Simulator;
pub use snapshot::{
    Checkpointable, EngineSnapshot, PersistState, SnapshotReader, SNAPSHOT_VERSION,
};
pub use stint::{AgentCodec, AgentStint, BoxedAgentStint, DecodedStint, IndexCodec};
