//! The batched count-based simulation engine.
//!
//! [`BatchedSimulator`] represents a configuration as a multiset — `counts[s]`
//! agents currently in state `s` — instead of a per-agent array, and advances
//! time in **collision-free batches**: it samples how many of the next
//! interactions touch pairwise-distinct agents (`Θ(√n)` in expectation, by the
//! birthday paradox), samples the multiset of participating state pairs with
//! multivariate hypergeometric draws, and applies each distinct transition
//! once per state-pair class.  The per-batch cost is `O(q²)` in the number of
//! **occupied** states `q` (states with at least one agent; the engine tracks
//! occupancy and never scans empty states) — independent of `n` — versus
//! `Θ(√n)` interactions advanced per batch, so large populations with small
//! state spaces run orders of magnitude faster than under the sequential
//! per-interaction engine.
//!
//! The batching is **exact**, not approximate: interactions on disjoint agents
//! commute, the participating agents of a collision-free block form a uniform
//! without-replacement sample (sampled by state via hypergeometrics), and the
//! block boundary — the first interaction that re-uses an agent — is sampled
//! from its true distribution and executed explicitly against the multiset of
//! already-touched agents (see [`sample`](crate::sample)).  Both engines
//! therefore simulate the same stochastic process, which the
//! distributional-equivalence tests verify.
//!
//! # When to use which engine
//!
//! * [`Simulator`](crate::Simulator): arbitrary state types, RNG-consulting
//!   transitions, small populations, or when per-agent trajectories matter.
//! * [`BatchedSimulator`]: enumerable state spaces ([`DenseProtocol`]) and
//!   large `n` — the regime where the paper's asymptotics (and the related
//!   self-stabilizing / coalescence workloads) become visible.
//!
//! # Example
//!
//! ```rust
//! use ppsim::{BatchedSimulator, DenseProtocol};
//!
//! /// One-way epidemic: state 1 spreads to every agent.
//! struct Rumor;
//! impl DenseProtocol for Rumor {
//!     type Output = bool;
//!     fn num_states(&self) -> usize { 2 }
//!     fn initial_state(&self) -> usize { 0 }
//!     fn transition(&self, u: usize, v: usize) -> (usize, usize) { (u.max(v), v) }
//!     fn output(&self, s: usize) -> bool { s == 1 }
//! }
//!
//! # fn main() -> Result<(), ppsim::SimError> {
//! let mut sim = BatchedSimulator::new(Rumor, 1_000_000, 42)?;
//! sim.transfer(0, 1, 1)?; // plant the rumour
//! let outcome = sim.run_until(|s| s.count_of(1) == s.population(), 1_000_000, u64::MAX);
//! assert!(outcome.converged());
//! # Ok(())
//! # }
//! ```

use rand::rngs::SmallRng;

use crate::block::{DeltaTable, Occupancy, TouchSet};
use crate::config::ConfigurationStats;
use crate::convergence::RunOutcome;
use crate::dense::DenseProtocol;
use crate::error::SimError;
use crate::rng::seeded_rng;
use crate::sample::{multivariate_hypergeometric_sparse, CollisionSampler};
use crate::snapshot::{
    persist_rng, unpersist_rng, Checkpointable, EngineSnapshot, PersistState, SnapshotReader,
    ENGINE_BATCHED,
};

/// A single execution of a [`DenseProtocol`] on the batched count-based engine.
///
/// Mirrors the [`Simulator`](crate::Simulator) driving surface (`run`,
/// `run_until`, `run_until_observed`, `output_stats`, seeded construction) on
/// a configuration stored as state counts.
#[derive(Debug, Clone)]
pub struct BatchedSimulator<P: DenseProtocol> {
    protocol: P,
    q: usize,
    counts: Vec<u64>,
    n: u64,
    rng: SmallRng,
    interactions: u64,
    /// Validated `δ`, precomputed as a dense table for small `q`.
    delta: DeltaTable,
    /// Cached batch-length sampler for this population size.
    collisions: CollisionSampler,
    /// Precomputed `ω` per state; `None` for dynamic (interned) protocols,
    /// whose outputs are evaluated lazily on occupied states.
    outputs: Option<Vec<P::Output>>,
    /// States that may be occupied, compacted every batch.  All per-batch
    /// work iterates this list, so empty regions of large state spaces cost
    /// nothing.
    occupied: Occupancy,
    /// Agents already touched by the current block (flat delta accumulator).
    touched: TouchSet,
    // Scratch buffers reused across batches.
    init_pairs: Vec<(u32, u64)>,
    resp_pairs: Vec<(u32, u64)>,
}

/// Mutable views into a [`BatchedSimulator`]'s configuration, used by the
/// sharded engine to resolve cross-shard interactions and rebalance agents
/// without going through the public (validating, `O(q)`) mutators.
pub(crate) struct ShardAccess<'a> {
    pub(crate) counts: &'a mut Vec<u64>,
    pub(crate) occupied: &'a mut Occupancy,
    pub(crate) touched: &'a mut TouchSet,
}

impl<P: DenseProtocol> BatchedSimulator<P> {
    /// Create a batched simulator for `n` agents, all in the protocol's
    /// initial state.
    ///
    /// # Examples
    ///
    /// ```rust
    /// use ppsim::{BatchedSimulator, DenseProtocol};
    ///
    /// /// Two-state one-way epidemic.
    /// struct Rumor;
    /// impl DenseProtocol for Rumor {
    ///     type Output = bool;
    ///     fn num_states(&self) -> usize { 2 }
    ///     fn initial_state(&self) -> usize { 0 }
    ///     fn transition(&self, u: usize, v: usize) -> (usize, usize) { (u.max(v), v) }
    ///     fn output(&self, s: usize) -> bool { s == 1 }
    /// }
    ///
    /// # fn main() -> Result<(), ppsim::SimError> {
    /// let mut sim = BatchedSimulator::new(Rumor, 10_000, 42)?;
    /// assert_eq!(sim.population(), 10_000);
    /// assert_eq!(sim.count_of(0), 10_000); // everyone starts in state 0
    /// sim.run(1_000);
    /// assert_eq!(sim.interactions(), 1_000);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`SimError::PopulationTooSmall`] if `n < 2`, and
    /// [`SimError::InvalidParameter`] if the protocol declares an empty state
    /// space, an out-of-range initial state, or (for table-sized state spaces,
    /// where `δ` is precomputed eagerly) a transition leaving `0..q`.
    pub fn new(protocol: P, n: usize, seed: u64) -> Result<Self, SimError> {
        if n < 2 {
            return Err(SimError::PopulationTooSmall { n });
        }
        let delta = DeltaTable::new(&protocol)?;
        let q = delta.num_states();
        let q0 = protocol.initial_state();
        let outputs = (!protocol.dynamic()).then(|| (0..q).map(|s| protocol.output(s)).collect());
        let mut counts = vec![0u64; q];
        counts[q0] = n as u64;
        Ok(BatchedSimulator {
            protocol,
            q,
            counts,
            n: n as u64,
            rng: seeded_rng(seed),
            interactions: 0,
            delta,
            collisions: CollisionSampler::new(n as u64),
            outputs,
            occupied: Occupancy::new(q, q0),
            touched: TouchSet::new(q),
            init_pairs: Vec::new(),
            resp_pairs: Vec::new(),
        })
    }

    /// Crate-internal view of the possibly-occupied state list.
    pub(crate) fn occupied_slice(&self) -> &[u32] {
        self.occupied.as_slice()
    }

    /// Crate-internal mutable access for the sharded engine.
    pub(crate) fn shard_access(&mut self) -> ShardAccess<'_> {
        ShardAccess {
            counts: &mut self.counts,
            occupied: &mut self.occupied,
            touched: &mut self.touched,
        }
    }

    /// The population size `n`.
    #[must_use]
    pub fn population(&self) -> u64 {
        self.n
    }

    /// The number of interactions executed so far.
    #[must_use]
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// The protocol being executed.
    #[must_use]
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The number of states `q` of the protocol.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.q
    }

    /// The number of currently occupied states (states holding ≥ 1 agent).
    #[must_use]
    pub fn occupied_states(&self) -> usize {
        self.occupied
            .as_slice()
            .iter()
            .filter(|&&s| self.counts[s as usize] > 0)
            .count()
    }

    /// The current configuration as state counts (`counts[s]` agents in state
    /// `s`; sums to `n`).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of agents currently in state `state`.
    #[must_use]
    pub fn count_of(&self, state: usize) -> u64 {
        self.counts.get(state).copied().unwrap_or(0)
    }

    /// Move `k` agents from state `from` to state `to` — the counts analogue
    /// of poking [`Simulator::states_mut`](crate::Simulator::states_mut) for
    /// experiment setup (planting a rumour, pre-electing a leader).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] if either state is out of range
    /// or fewer than `k` agents are in `from`.
    pub fn transfer(&mut self, from: usize, to: usize, k: u64) -> Result<(), SimError> {
        if from >= self.q || to >= self.q {
            return Err(SimError::InvalidParameter {
                name: "transfer",
                reason: format!(
                    "states ({from}, {to}) outside the state space 0..{}",
                    self.q
                ),
            });
        }
        if self.counts[from] < k {
            return Err(SimError::InvalidParameter {
                name: "transfer",
                reason: format!(
                    "cannot move {k} agents out of state {from} holding {}",
                    self.counts[from]
                ),
            });
        }
        self.counts[from] -= k;
        self.counts[to] += k;
        self.occupied.mark(to);
        Ok(())
    }

    /// Replace the whole configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] if `counts` has the wrong length
    /// or does not sum to the population size.
    pub fn set_counts(&mut self, counts: Vec<u64>) -> Result<(), SimError> {
        if counts.len() != self.q {
            return Err(SimError::InvalidParameter {
                name: "counts",
                reason: format!("expected {} state counts, got {}", self.q, counts.len()),
            });
        }
        let total: u64 = counts.iter().sum();
        if total != self.n {
            return Err(SimError::InvalidParameter {
                name: "counts",
                reason: format!("counts sum to {total}, the population is {}", self.n),
            });
        }
        self.counts = counts;
        self.occupied.rebuild(&self.counts);
        Ok(())
    }

    /// Corrupt `k` agents chosen uniformly without replacement: each victim's
    /// state is replaced by `new_state(current, rng)` — the count-based
    /// analogue of an adversary overwriting `k` agents' memories
    /// ([`crate::adversary`]).
    ///
    /// All randomness (the hypergeometric victim draw and whatever
    /// `new_state` consumes) comes from the caller's `rng`, never from the
    /// engine's own stream, so injecting a fault does not perturb the
    /// scheduled trajectory beyond the corruption itself.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] if `k` exceeds the population
    /// or `new_state` returns a state outside `0..q`.
    pub fn corrupt(
        &mut self,
        k: u64,
        rng: &mut SmallRng,
        new_state: &mut dyn FnMut(usize, &mut SmallRng) -> usize,
    ) -> Result<(), SimError> {
        if k > self.n {
            return Err(SimError::InvalidParameter {
                name: "corrupt",
                reason: format!("cannot corrupt {k} of {} agents", self.n),
            });
        }
        let mut victims = Vec::new();
        multivariate_hypergeometric_sparse(
            rng,
            &self.counts,
            self.occupied.as_slice(),
            self.n,
            k,
            &mut victims,
        );
        for (state, hit) in victims {
            let from = state as usize;
            for _ in 0..hit {
                let to = new_state(from, rng);
                if to >= self.q {
                    return Err(SimError::InvalidParameter {
                        name: "corrupt",
                        reason: format!("target state {to} outside the state space 0..{}", self.q),
                    });
                }
                self.counts[from] -= 1;
                self.counts[to] += 1;
                self.occupied.mark(to);
            }
        }
        Ok(())
    }

    /// Output histogram of the current configuration, computed in `O(q)` over
    /// the occupied states — the batched engine's convergence checks do not
    /// touch `n` at all.
    #[must_use]
    pub fn output_stats(&self) -> ConfigurationStats<P::Output> {
        ConfigurationStats::from_counts(self.occupied.as_slice().iter().filter_map(|&s| {
            let c = self.counts[s as usize];
            (c > 0).then(|| {
                let out = match &self.outputs {
                    Some(outputs) => outputs[s as usize].clone(),
                    None => self.protocol.output(s as usize),
                };
                (out, c as usize)
            })
        }))
    }

    /// Execute exactly one interaction (sequentially, against the counts).
    ///
    /// Equivalent to one [`Simulator::step`](crate::Simulator::step); used for
    /// fine-grained control and as the reference path in tests.
    pub fn step(&mut self) {
        let i = crate::block::draw_one(
            &mut self.rng,
            &mut self.counts,
            self.occupied.as_slice(),
            self.n,
        );
        let j = crate::block::draw_one(
            &mut self.rng,
            &mut self.counts,
            self.occupied.as_slice(),
            self.n - 1,
        );
        let (a, b) = self.delta.eval(&self.protocol, i, j);
        self.counts[a] += 1;
        self.counts[b] += 1;
        self.occupied.mark(a);
        self.occupied.mark(b);
        self.interactions += 1;
    }

    /// Execute one collision-free batch of at most `cap` interactions; returns
    /// the number of interactions executed (at least 1).
    fn run_batch(&mut self, cap: u64) -> u64 {
        debug_assert!(cap >= 1);
        let draw = self.collisions.sample(&mut self.rng, cap);
        let clean = draw.clean;
        debug_assert!(clean >= 1);

        // Which states do the 2·clean pairwise-distinct agents hold?  Sample
        // `clean` initiators, then `clean` responders from the remainder —
        // the roles of a uniform without-replacement agent sample.
        let mut init_pairs = std::mem::take(&mut self.init_pairs);
        let mut resp_pairs = std::mem::take(&mut self.resp_pairs);
        multivariate_hypergeometric_sparse(
            &mut self.rng,
            &self.counts,
            self.occupied.as_slice(),
            self.n,
            clean,
            &mut init_pairs,
        );
        for &(s, k) in &init_pairs {
            self.counts[s as usize] -= k;
        }
        multivariate_hypergeometric_sparse(
            &mut self.rng,
            &self.counts,
            self.occupied.as_slice(),
            self.n - clean,
            clean,
            &mut resp_pairs,
        );
        for &(s, k) in &resp_pairs {
            self.counts[s as usize] -= k;
        }

        // Pair initiator classes with responder classes uniformly at random
        // (a random contingency table with the sampled margins) and apply each
        // transition once per class, multiplied by its multiplicity, into the
        // flat touched accumulator.
        let (protocol, delta, touched) = (&self.protocol, &self.delta, &mut self.touched);
        crate::block::pair_classes(
            &mut self.rng,
            &init_pairs,
            &mut resp_pairs,
            clean,
            |i, j, k| {
                let (a, b) = delta.eval(protocol, i, j);
                touched.add(a, k);
                touched.add(b, k);
            },
        );
        self.init_pairs = init_pairs;
        self.resp_pairs = resp_pairs;

        // The collision interaction, executed against the multiset of agents
        // that already interacted in this batch (their *post*-transition
        // states, which is what a re-used agent carries).
        let mut executed = clean;
        if let Some(c) = draw.collision {
            let mut touched_total = 2 * clean;
            let untouched_total = self.n - 2 * clean;
            let i = if c.initiator_used {
                let s = self.touched.draw_one(&mut self.rng, touched_total);
                touched_total -= 1;
                s
            } else {
                crate::block::draw_one(
                    &mut self.rng,
                    &mut self.counts,
                    self.occupied.as_slice(),
                    untouched_total,
                )
            };
            let j = if c.responder_used {
                self.touched.draw_one(&mut self.rng, touched_total)
            } else {
                let left = if c.initiator_used {
                    untouched_total
                } else {
                    untouched_total - 1
                };
                crate::block::draw_one(
                    &mut self.rng,
                    &mut self.counts,
                    self.occupied.as_slice(),
                    left,
                )
            };
            let (a, b) = self.delta.eval(&self.protocol, i, j);
            self.touched.add(a, 1);
            self.touched.add(b, 1);
            executed += 1;
        }

        // Merge the touched agents back into the configuration, then compact
        // the occupancy list (dropping states the batch emptied).
        self.touched
            .merge_into(&mut self.counts, &mut self.occupied);
        self.occupied.compact(&self.counts);
        #[cfg(feature = "strict-invariants")]
        crate::block::assert_mass_conserved(
            &self.counts,
            self.n,
            "batched block delta application",
        );

        self.interactions += executed;
        executed
    }

    /// Execute `budget` further interactions unconditionally.
    pub fn run(&mut self, budget: u64) {
        let mut remaining = budget;
        while remaining > 0 {
            remaining -= self.run_batch(remaining);
        }
    }

    /// Run until `pred` holds (checked every `check_every` interactions, and
    /// once before the first step) or until `max_interactions` *total*
    /// interactions have been executed — the same contract as
    /// [`Simulator::run_until`](crate::Simulator::run_until).
    pub fn run_until<F>(
        &mut self,
        mut pred: F,
        check_every: u64,
        max_interactions: u64,
    ) -> RunOutcome
    where
        F: FnMut(&Self) -> bool,
    {
        let check_every = check_every.max(1);
        if pred(self) {
            return RunOutcome::Converged {
                interactions: self.interactions,
            };
        }
        while self.interactions < max_interactions {
            let chunk = check_every.min(max_interactions - self.interactions);
            self.run(chunk);
            if pred(self) {
                return RunOutcome::Converged {
                    interactions: self.interactions,
                };
            }
        }
        RunOutcome::Exhausted {
            interactions: self.interactions,
            budget: max_interactions,
        }
    }

    /// Run until `pred` holds, invoking `observer` after every check interval —
    /// the same contract as
    /// [`Simulator::run_until_observed`](crate::Simulator::run_until_observed).
    pub fn run_until_observed<F, Obs>(
        &mut self,
        mut pred: F,
        mut observer: Obs,
        check_every: u64,
        max_interactions: u64,
    ) -> RunOutcome
    where
        F: FnMut(&Self) -> bool,
        Obs: FnMut(&Self),
    {
        let check_every = check_every.max(1);
        observer(self);
        if pred(self) {
            return RunOutcome::Converged {
                interactions: self.interactions,
            };
        }
        while self.interactions < max_interactions {
            let chunk = check_every.min(max_interactions - self.interactions);
            self.run(chunk);
            observer(self);
            if pred(self) {
                return RunOutcome::Converged {
                    interactions: self.interactions,
                };
            }
        }
        RunOutcome::Exhausted {
            interactions: self.interactions,
            budget: max_interactions,
        }
    }

    /// Consume the simulator and return the final configuration counts.
    #[must_use]
    pub fn into_counts(self) -> Vec<u64> {
        self.counts
    }

    /// Serialize the engine core into `out` (shared by the top-level
    /// [`Checkpointable`] impl and the sharded engine's per-shard
    /// sub-snapshots, which set `include_protocol = false` because all shard
    /// copies share one protocol whose state the sharded snapshot stores
    /// once).
    ///
    /// Core layout:
    ///
    /// ```text
    /// u64              population n
    /// u64              state-space size q
    /// [u64; 4]         RNG state
    /// u64              interactions executed
    /// Vec<u8>          protocol state (only if include_protocol)
    /// Vec<(u32, u64)>  (state, count) per occupied-list entry, in the
    ///                  list's discovery order — the order is part of the
    ///                  trajectory (categorical draws iterate it), so it is
    ///                  stored verbatim, zero-count entries included
    /// ```
    pub(crate) fn save_core(&self, include_protocol: bool, out: &mut Vec<u8>) {
        self.n.persist(out);
        self.q.persist(out);
        persist_rng(&self.rng, out);
        self.interactions.persist(out);
        if include_protocol {
            self.protocol.save_protocol_state().persist(out);
        }
        let occ: Vec<(u32, u64)> = self
            .occupied
            .as_slice()
            .iter()
            .map(|&s| (s, self.counts[s as usize]))
            .collect();
        occ.persist(out);
    }

    /// Restore a core written by [`Self::save_core`].  Everything derivable
    /// is rebuilt rather than read: the collision sampler is a pure function
    /// of `n` (validated unchanged), and the δ-table is reconstructed so a
    /// dynamic protocol's pair memo cannot carry state indices from another
    /// process's index assignment.
    pub(crate) fn restore_core(
        &mut self,
        r: &mut SnapshotReader<'_>,
        restore_protocol: bool,
    ) -> Result<(), SimError> {
        let n = r.read::<u64>()?;
        let q = r.read::<usize>()?;
        let rng = unpersist_rng(r)?;
        let interactions = r.read::<u64>()?;
        if restore_protocol {
            let protocol_bytes = r.read::<Vec<u8>>()?;
            self.protocol.restore_protocol_state(&protocol_bytes)?;
        }
        let occ = r.read::<Vec<(u32, u64)>>()?;
        if n != self.n {
            return Err(SimError::SnapshotMismatch {
                reason: format!("snapshot population {n} != simulator population {}", self.n),
            });
        }
        if q != self.q {
            return Err(SimError::SnapshotMismatch {
                reason: format!(
                    "snapshot state space {q} != simulator state space {}",
                    self.q
                ),
            });
        }
        let total: u64 = occ.iter().map(|&(_, c)| c).sum();
        if total != n {
            return Err(SimError::SnapshotCorrupt {
                reason: format!("occupied counts sum to {total}, population is {n}"),
            });
        }
        // Zero the current configuration through its own occupied list (every
        // non-zero count is marked, so this touches all of them) before
        // installing the snapshot's.
        for &s in self.occupied.as_slice() {
            self.counts[s as usize] = 0;
        }
        self.occupied
            .restore_list(occ.iter().map(|&(s, _)| s).collect())?;
        for &(s, c) in &occ {
            self.counts[s as usize] = c;
        }
        self.rng = rng;
        self.interactions = interactions;
        self.delta = DeltaTable::new(&self.protocol)?;
        Ok(())
    }
}

/// Checkpointing for the batched engine: counts (sparse, in occupied-list
/// order), RNG stream, and interaction counter, plus the protocol's own
/// state (interner contents for dynamic protocols).  The collision sampler
/// carries no mutable state across `run` calls and is rebuilt from `n`.
impl<P: DenseProtocol> Checkpointable for BatchedSimulator<P> {
    fn save_state(&self) -> EngineSnapshot {
        let mut payload = Vec::new();
        self.save_core(true, &mut payload);
        EngineSnapshot::new(ENGINE_BATCHED, payload)
    }

    fn restore_state(&mut self, snapshot: &EngineSnapshot) -> Result<(), SimError> {
        snapshot.expect_engine(ENGINE_BATCHED, "the batched engine")?;
        let mut r = snapshot.reader();
        self.restore_core(&mut r, true)?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseAdapter;
    use crate::simulator::Simulator;

    /// One-way epidemic on two dense states.
    #[derive(Debug, Clone, Copy)]
    struct Rumor;
    impl DenseProtocol for Rumor {
        type Output = bool;
        fn num_states(&self) -> usize {
            2
        }
        fn initial_state(&self) -> usize {
            0
        }
        fn transition(&self, u: usize, v: usize) -> (usize, usize) {
            (u.max(v), v)
        }
        fn output(&self, s: usize) -> bool {
            s == 1
        }
        fn name(&self) -> &'static str {
            "rumor"
        }
    }

    /// A protocol with a conserved quantity: state index = number of tokens
    /// (0..=3); the initiator steals one token from the responder when it can
    /// hold it.
    #[derive(Debug, Clone, Copy)]
    struct TokenDrift;
    impl DenseProtocol for TokenDrift {
        type Output = usize;
        fn num_states(&self) -> usize {
            4
        }
        fn initial_state(&self) -> usize {
            1
        }
        fn transition(&self, u: usize, v: usize) -> (usize, usize) {
            if v > 0 && u < 3 {
                (u + 1, v - 1)
            } else {
                (u, v)
            }
        }
        fn output(&self, s: usize) -> usize {
            s
        }
        fn name(&self) -> &'static str {
            "token-drift"
        }
    }

    #[test]
    fn rejects_tiny_population() {
        assert_eq!(
            BatchedSimulator::new(Rumor, 1, 0).err(),
            Some(SimError::PopulationTooSmall { n: 1 })
        );
        assert!(BatchedSimulator::new(Rumor, 2, 0).is_ok());
    }

    #[test]
    fn rejects_broken_protocols() {
        struct Empty;
        impl DenseProtocol for Empty {
            type Output = ();
            fn num_states(&self) -> usize {
                0
            }
            fn initial_state(&self) -> usize {
                0
            }
            fn transition(&self, _: usize, _: usize) -> (usize, usize) {
                (0, 0)
            }
            fn output(&self, _: usize) {}
        }
        assert!(matches!(
            BatchedSimulator::new(Empty, 10, 0),
            Err(SimError::InvalidParameter {
                name: "num_states",
                ..
            })
        ));

        struct Escapes;
        impl DenseProtocol for Escapes {
            type Output = ();
            fn num_states(&self) -> usize {
                2
            }
            fn initial_state(&self) -> usize {
                0
            }
            fn transition(&self, _: usize, _: usize) -> (usize, usize) {
                (5, 0)
            }
            fn output(&self, _: usize) {}
        }
        assert!(matches!(
            BatchedSimulator::new(Escapes, 10, 0),
            Err(SimError::InvalidParameter {
                name: "transition",
                ..
            })
        ));
    }

    #[test]
    fn run_executes_exactly_the_budget() {
        let mut sim = BatchedSimulator::new(Rumor, 1000, 3).unwrap();
        sim.transfer(0, 1, 1).unwrap();
        sim.run(12_345);
        assert_eq!(sim.interactions(), 12_345);
        sim.step();
        assert_eq!(sim.interactions(), 12_346);
    }

    #[test]
    fn counts_always_sum_to_n() {
        let mut sim = BatchedSimulator::new(TokenDrift, 500, 7).unwrap();
        for _ in 0..50 {
            sim.run(1000);
            assert_eq!(sim.counts().iter().sum::<u64>(), 500);
        }
    }

    #[test]
    fn conserved_quantities_stay_conserved() {
        // Total token count (Σ state·count) is invariant under TokenDrift.
        let mut sim = BatchedSimulator::new(TokenDrift, 300, 11).unwrap();
        let total = |s: &BatchedSimulator<TokenDrift>| -> u64 {
            s.counts()
                .iter()
                .enumerate()
                .map(|(st, c)| st as u64 * c)
                .sum()
        };
        let before = total(&sim);
        sim.run(100_000);
        assert_eq!(total(&sim), before);
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        let mut a = BatchedSimulator::new(TokenDrift, 256, 77).unwrap();
        let mut b = BatchedSimulator::new(TokenDrift, 256, 77).unwrap();
        a.run(50_000);
        b.run(50_000);
        assert_eq!(a.counts(), b.counts());
        assert_eq!(a.interactions(), b.interactions());
    }

    #[test]
    fn epidemic_reaches_everyone_in_n_log_n_time() {
        let n = 100_000u64;
        let mut sim = BatchedSimulator::new(Rumor, n as usize, 5).unwrap();
        sim.transfer(0, 1, 1).unwrap();
        let outcome = sim.run_until(|s| s.count_of(1) == n, n, u64::MAX >> 1);
        let t = outcome.expect_converged("batched epidemic");
        let nf = n as f64;
        assert!(
            t >= n - 1,
            "an epidemic needs at least n-1 informing interactions"
        );
        assert!(
            (t as f64) < 8.0 * nf * nf.ln(),
            "epidemic took {t} interactions, far beyond O(n log n)"
        );
    }

    #[test]
    fn output_stats_track_counts_in_constant_population_work() {
        let mut sim = BatchedSimulator::new(Rumor, 10_000, 9).unwrap();
        sim.transfer(0, 1, 123).unwrap();
        let stats = sim.output_stats();
        assert_eq!(stats.population(), 10_000);
        assert_eq!(stats.count_of(&true), 123);
        assert_eq!(stats.count_of(&false), 9877);
        assert_eq!(stats.distinct_outputs(), 2);
        assert!(stats.unanimous().is_none());
    }

    #[test]
    fn run_until_contract_matches_sequential_engine() {
        let mut sim = BatchedSimulator::new(Rumor, 100, 1).unwrap();
        // Predicate already true: no interactions executed.
        let outcome = sim.run_until(|_| true, 10, 1000);
        assert_eq!(outcome, RunOutcome::Converged { interactions: 0 });
        // Budget exhaustion is exact.
        let outcome = sim.run_until(|_| false, 7, 100);
        assert_eq!(
            outcome,
            RunOutcome::Exhausted {
                interactions: 100,
                budget: 100
            }
        );
        assert_eq!(sim.interactions(), 100);
    }

    #[test]
    fn observer_sees_monotone_interaction_counts() {
        let mut sim = BatchedSimulator::new(Rumor, 5000, 13).unwrap();
        sim.transfer(0, 1, 1).unwrap();
        let mut checkpoints = Vec::new();
        let _ = sim.run_until_observed(
            |s| s.count_of(1) == s.population(),
            |s| checkpoints.push(s.interactions()),
            1000,
            50_000_000,
        );
        assert_eq!(checkpoints[0], 0);
        assert!(checkpoints.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn transfer_and_set_counts_validate() {
        let mut sim = BatchedSimulator::new(Rumor, 10, 0).unwrap();
        assert!(
            sim.transfer(0, 1, 11).is_err(),
            "cannot move more agents than present"
        );
        assert!(sim.transfer(0, 7, 1).is_err(), "destination out of range");
        assert!(sim.set_counts(vec![5, 4]).is_err(), "sum must equal n");
        assert!(
            sim.set_counts(vec![5, 5, 0]).is_err(),
            "length must equal q"
        );
        assert!(sim.set_counts(vec![4, 6]).is_ok());
        assert_eq!(sim.count_of(1), 6);
    }

    #[test]
    fn snapshot_round_trip_is_identity_and_replay_is_bit_identical() {
        let mut sim = BatchedSimulator::new(TokenDrift, 2_000, 31).unwrap();
        sim.run(37_501);
        let snap = sim.save_state();

        let mut copy = BatchedSimulator::new(TokenDrift, 2_000, 0).unwrap();
        copy.restore_state(&snap).unwrap();
        assert_eq!(copy.counts(), sim.counts());
        assert_eq!(copy.interactions(), sim.interactions());
        assert_eq!(copy.occupied_slice(), sim.occupied_slice());

        // Resume must retrace the uninterrupted run chunk-for-chunk.
        sim.run(10_000);
        sim.run(3_333);
        copy.run(10_000);
        copy.run(3_333);
        assert_eq!(copy.counts(), sim.counts());
        assert_eq!(copy.save_state().to_bytes(), sim.save_state().to_bytes());
    }

    #[test]
    fn snapshot_restore_validates_population_state_space_and_sums() {
        let sim = BatchedSimulator::new(Rumor, 100, 0).unwrap();
        let snap = sim.save_state();
        let mut other_n = BatchedSimulator::new(Rumor, 101, 0).unwrap();
        assert!(matches!(
            other_n.restore_state(&snap),
            Err(SimError::SnapshotMismatch { .. })
        ));
        let mut other_q = BatchedSimulator::new(TokenDrift, 100, 0).unwrap();
        assert!(matches!(
            other_q.restore_state(&snap),
            Err(SimError::SnapshotMismatch { .. })
        ));
        // Corrupt the payload's counts so they no longer sum to n.
        let mut bytes = snap.to_bytes();
        let last = bytes.len() - 5;
        bytes[last] ^= 0xFF;
        assert!(crate::snapshot::EngineSnapshot::from_bytes(&bytes).is_err());
    }

    #[test]
    fn into_counts_returns_final_configuration() {
        let mut sim = BatchedSimulator::new(Rumor, 64, 2).unwrap();
        sim.transfer(0, 1, 1).unwrap();
        sim.run(100_000);
        let counts = sim.into_counts();
        assert_eq!(counts, vec![0, 64], "the rumour saturates eventually");
    }

    #[test]
    fn sparse_occupancy_tracks_a_huge_state_space() {
        // A state space of 100_001 states of which only a handful are ever
        // occupied: the occupancy list must stay small and the engine fast.
        #[derive(Debug, Clone, Copy)]
        struct WideDrift;
        impl DenseProtocol for WideDrift {
            type Output = usize;
            fn num_states(&self) -> usize {
                100_001
            }
            fn initial_state(&self) -> usize {
                50_000
            }
            fn transition(&self, u: usize, v: usize) -> (usize, usize) {
                // Initiator moves one step towards the responder.
                match u.cmp(&v) {
                    std::cmp::Ordering::Less => (u + 1, v),
                    std::cmp::Ordering::Greater => (u - 1, v),
                    std::cmp::Ordering::Equal => (u, v),
                }
            }
            fn output(&self, s: usize) -> usize {
                s
            }
        }
        let mut sim = BatchedSimulator::new(WideDrift, 10_000, 21).unwrap();
        sim.transfer(50_000, 50_003, 5).unwrap();
        sim.run(200_000);
        assert_eq!(sim.counts().iter().sum::<u64>(), 10_000);
        // The random walk stays near the seed states; occupancy must not leak.
        assert!(
            sim.occupied_states() < 200,
            "occupancy list grew to {}",
            sim.occupied_states()
        );
    }

    #[test]
    fn step_only_runs_match_sequential_statistics() {
        // With batching disabled (pure step()), the batched engine is a
        // textbook sequential simulator over counts; epidemic progress after a
        // fixed horizon should match the per-agent engine closely on average.
        let n = 400usize;
        let horizon = 4000u64;
        let trials = 40u64;
        let mut informed_batched = 0u64;
        let mut informed_seq = 0u64;
        for t in 0..trials {
            let mut bs = BatchedSimulator::new(Rumor, n, 1000 + t).unwrap();
            bs.transfer(0, 1, 1).unwrap();
            for _ in 0..horizon {
                bs.step();
            }
            informed_batched += bs.count_of(1);

            let mut ss = Simulator::new(DenseAdapter(Rumor), n, 5000 + t).unwrap();
            ss.states_mut()[0] = 1;
            ss.run(horizon);
            informed_seq += ss.states().iter().filter(|&&s| s == 1).count() as u64;
        }
        let a = informed_batched as f64 / trials as f64;
        let b = informed_seq as f64 / trials as f64;
        let rel = (a - b).abs() / b.max(1.0);
        assert!(
            rel < 0.15,
            "mean informed counts diverge: batched {a:.1} vs sequential {b:.1}"
        );
    }
}
