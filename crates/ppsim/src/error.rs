//! Error type of the simulator.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or driving a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The population must contain at least two agents so that an ordered pair of
    /// distinct agents can be selected by the scheduler.
    PopulationTooSmall {
        /// The offending population size.
        n: usize,
    },
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::PopulationTooSmall { n } => {
                write!(
                    f,
                    "population size {n} is too small, at least 2 agents are required"
                )
            }
            SimError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_population_too_small() {
        let e = SimError::PopulationTooSmall { n: 1 };
        assert!(e.to_string().contains("population size 1"));
    }

    #[test]
    fn display_invalid_parameter() {
        let e = SimError::InvalidParameter {
            name: "m",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("`m`"));
        assert!(e.to_string().contains("must be positive"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
