//! Error type of the simulator.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or driving a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The population must contain at least two agents so that an ordered pair of
    /// distinct agents can be selected by the scheduler.
    PopulationTooSmall {
        /// The offending population size.
        n: usize,
    },
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A snapshot failed structural validation: truncated, bad magic, CRC
    /// mismatch, or a payload that does not decode.
    SnapshotCorrupt {
        /// What failed to validate.
        reason: String,
    },
    /// A snapshot was written by an unsupported format version.
    SnapshotVersion {
        /// The version found in the header.
        found: u32,
        /// The newest version this build can read.
        supported: u32,
    },
    /// A structurally valid snapshot does not fit the simulator it is being
    /// restored into (wrong engine, population size, state space, or engine
    /// configuration).
    SnapshotMismatch {
        /// Which invariant the snapshot violated.
        reason: String,
    },
    /// Reading or writing a snapshot file failed.
    SnapshotIo {
        /// The file involved.
        path: String,
        /// The underlying I/O error, rendered to text (the variant stays
        /// `Clone + Eq`).
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::PopulationTooSmall { n } => {
                write!(
                    f,
                    "population size {n} is too small, at least 2 agents are required"
                )
            }
            SimError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            SimError::SnapshotCorrupt { reason } => {
                write!(f, "corrupt snapshot: {reason}")
            }
            SimError::SnapshotVersion { found, supported } => {
                write!(
                    f,
                    "unsupported snapshot format version {found} (this build reads up to {supported})"
                )
            }
            SimError::SnapshotMismatch { reason } => {
                write!(f, "snapshot does not fit this simulator: {reason}")
            }
            SimError::SnapshotIo { path, reason } => {
                write!(f, "snapshot I/O on `{path}`: {reason}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_population_too_small() {
        let e = SimError::PopulationTooSmall { n: 1 };
        assert!(e.to_string().contains("population size 1"));
    }

    #[test]
    fn display_invalid_parameter() {
        let e = SimError::InvalidParameter {
            name: "m",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("`m`"));
        assert!(e.to_string().contains("must be positive"));
    }

    #[test]
    fn display_snapshot_variants() {
        let e = SimError::SnapshotCorrupt {
            reason: "truncated header".into(),
        };
        assert!(e.to_string().contains("corrupt snapshot"));
        let e = SimError::SnapshotVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("version 9"));
        assert!(e.to_string().contains("up to 1"));
        let e = SimError::SnapshotMismatch {
            reason: "population 10 != 20".into(),
        };
        assert!(e.to_string().contains("does not fit"));
        let e = SimError::SnapshotIo {
            path: "/tmp/x.ppss".into(),
            reason: "permission denied".into(),
        };
        assert!(e.to_string().contains("/tmp/x.ppss"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
