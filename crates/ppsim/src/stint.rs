//! Typed agent-state codecs and the decoded per-agent stint engine.
//!
//! The hybrid engine ([`HybridSimulator`](crate::HybridSimulator)) migrates a
//! run to per-agent simulation when the count representation degenerates.
//! Through PR 4 that per-agent stint stepped **interned `u32` indices**: every
//! interaction of a dynamic protocol walked decode → interact → re-encode
//! through the [`StateInterner`](crate::StateInterner) (two `RwLock`ed map
//! probes and two SipHash evaluations per interaction), which cost a measured
//! ~40 % of the `CountExact` refinement leg at `n = 10⁵` — exactly the
//! `Θ(n)`-live-loads regime where per-agent simulation carries the run.
//!
//! This module removes the interner from that hot loop:
//!
//! * [`AgentCodec`] is an optional extension of
//!   [`DenseProtocol`]: a bijection
//!   `decode: index → native state` / `encode: state → index` (interning only
//!   on encode) plus a **native protocol** ([`AgentCodec::Native`]) whose
//!   monomorphic [`Protocol::interact`] steps the decoded structs directly.
//! * [`DecodedStint`] is the per-agent engine the hybrid engine runs between
//!   migrations: it holds a `Vec` of native structs, steps them with
//!   `Protocol::interact` — no interner lookup, no δ-memo probe — and
//!   consults the codec only at the migration boundaries (expand on
//!   dense → agent, tally + intern on agent → dense), so the hand-off stays
//!   the exact Markov-in-configuration transfer.
//! * [`IndexCodec`] is the fallback codec for protocols without a native
//!   decoding: the "native" state is the dense index itself, and stepping
//!   goes through [`DenseProtocol::transition`](crate::DenseProtocol) exactly
//!   as the PR 4 stint did — this is also the comparison lever
//!   ([`HybridConfig::interned_stints`](crate::HybridConfig)) that keeps the
//!   interned behaviour measurable.
//!
//! # The incremental census
//!
//! The hybrid monitor needs the occupancy `q_occ` (distinct live states) in
//! per-agent mode too.  Instead of sorting a copy of the state vector at
//! every observation (`O(n log n)`), the stint maintains the census
//! **incrementally**: a per-agent vector of 64-bit state hashes and a
//! hash-keyed multiplicity map are updated as interactions change states, so
//! an observation reads a counter in `O(1)`.  Keying by hash makes the
//! census an undercount when two distinct states collide in 64 bits — a
//! `~q_occ²/2⁶⁴` event that can only nudge the monitor's signal, never the
//! simulated process.
//!
//! # Example
//!
//! A protocol whose dense indices decode into a native struct; the stint
//! steps the structs and round-trips exactly:
//!
//! ```rust
//! use ppsim::stint::{AgentCodec, AgentStint, DecodedStint};
//! use ppsim::snapshot::SnapshotReader;
//! use ppsim::{DenseProtocol, PersistState, Protocol};
//! use rand::rngs::SmallRng;
//!
//! /// Parity counter: dense index = (count, flag) packed as 2*count + flag.
//! #[derive(Debug, Clone, Copy)]
//! struct Packed;
//! #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
//! struct Native { count: u8, flag: bool }
//!
//! // Native states are checkpointable field-by-field, so stints taken
//! // mid-run can be persisted (see `ppsim::snapshot`).
//! impl PersistState for Native {
//!     fn persist(&self, out: &mut Vec<u8>) {
//!         self.count.persist(out);
//!         self.flag.persist(out);
//!     }
//!     fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, ppsim::SimError> {
//!         Ok(Native { count: r.read()?, flag: r.read()? })
//!     }
//! }
//!
//! impl Protocol for Packed {
//!     type State = Native;
//!     type Output = bool;
//!     fn initial_state(&self) -> Native { Native { count: 0, flag: false } }
//!     fn interact(&self, u: &mut Native, v: &mut Native, _rng: &mut SmallRng) {
//!         u.count = (u.count + 1) % 8;
//!         u.flag = v.flag;
//!     }
//!     fn output(&self, s: &Native) -> bool { s.flag }
//! }
//!
//! impl DenseProtocol for Packed {
//!     type Output = bool;
//!     fn num_states(&self) -> usize { 16 }
//!     fn initial_state(&self) -> usize { 0 }
//!     fn transition(&self, u: usize, v: usize) -> (usize, usize) {
//!         let (mut a, mut b) = (self.decode_agent(u), self.decode_agent(v));
//!         let mut rng = ppsim::seeded_rng(0);
//!         Protocol::interact(self, &mut a, &mut b, &mut rng);
//!         (self.encode_agent(&a), self.encode_agent(&b))
//!     }
//!     fn output(&self, s: usize) -> bool { s % 2 == 1 }
//! }
//!
//! impl AgentCodec for Packed {
//!     type Native = Packed;
//!     fn native(&self) -> Packed { *self }
//!     fn decode_agent(&self, index: usize) -> Native {
//!         Native { count: (index / 2) as u8, flag: index % 2 == 1 }
//!     }
//!     fn encode_agent(&self, s: &Native) -> usize {
//!         2 * s.count as usize + usize::from(s.flag)
//!     }
//! }
//!
//! // decode → encode round-trips over the whole index space …
//! for i in 0..16 {
//!     assert_eq!(Packed.encode_agent(&Packed.decode_agent(i)), i);
//! }
//! // … and the stint steps native structs, tallying back to counts on demand.
//! let counts = vec![5, 3, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
//! let mut stint = DecodedStint::from_counts(Packed, &counts, 7);
//! stint.run(1_000);
//! assert_eq!(stint.counts().iter().sum::<u64>(), 10);
//! ```

// Deterministic build hashers throughout; maps are lookup-only and
// never iterated in replay-sensitive paths. ppcheck: allow(hashmap-iter)
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hash, Hasher};

use crate::config::ConfigurationStats;
use crate::dense::DenseProtocol;
use crate::error::SimError;
use crate::protocol::Protocol;
use crate::rng::seeded_rng;
use crate::scheduler::{Scheduler, UniformScheduler};
use crate::snapshot::{persist_rng, unpersist_rng, PersistState, SnapshotReader};

use rand::rngs::SmallRng;
use rand::Rng;

/// A multiplicative word hasher (FxHash-style) for the stint's census: state
/// structs are hashed word-at-a-time far faster than SipHash, and the census
/// is engine-private so no untrusted keys reach it.
#[derive(Debug, Default, Clone)]
pub(crate) struct StateHasher(u64);

impl Hasher for StateHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            // `chunks_exact(8)` yields 8-byte slices only. ppcheck: allow(no-unwrap)
            self.write_u64(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let mut tail = 0u64;
        for (i, &b) in chunks.remainder().iter().enumerate() {
            tail |= u64::from(b) << (8 * i);
        }
        if !chunks.remainder().is_empty() {
            self.write_u64(tail);
        }
    }
    fn write_u8(&mut self, i: u8) {
        self.write_u64(u64::from(i));
    }
    fn write_u16(&mut self, i: u16) {
        self.write_u64(u64::from(i));
    }
    fn write_u32(&mut self, i: u32) {
        self.write_u64(u64::from(i));
    }
    fn write_u64(&mut self, i: u64) {
        // Rotate + xor + multiply by 2⁶⁴/φ: the classic Fx mixing step.
        self.0 = (self.0.rotate_left(5) ^ i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// Hash a state value with the census hasher.
fn state_hash<S: Hash>(state: &S) -> u64 {
    let mut h = StateHasher::default();
    state.hash(&mut h);
    h.finish()
}

/// The census multiplicity map: 64-bit state hash → number of agents.
type Census = HashMap<u64, u64, BuildHasherDefault<StateHasher>>;

/// An optional extension of [`DenseProtocol`]: a typed codec between dense
/// state indices and **native per-agent structs**, plus a native protocol
/// stepping those structs with the monomorphic [`Protocol::interact`].
///
/// Implementing this trait lets the hybrid engine run its per-agent stints on
/// [`DecodedStint`] — native structs in a `Vec`, zero interner traffic per
/// interaction — instead of the interned `u32` fallback.  Implementers also
/// override [`DenseProtocol::agent_stint`] to hand the engine the stint
/// (three lines; see the module docs of [`crate::hybrid`]).
///
/// # Contract
///
/// * `encode_agent(&decode_agent(i)) == i` for every assigned index `i`
///   (assigned = any index the protocol has handed out; for interned
///   protocols that is `0..discovered`, for arithmetic packings `0..q`).
/// * `decode → Native::interact → encode` must agree with
///   [`DenseProtocol::transition`] on assigned indices — the decoded stint
///   and the interned path must bisimulate (property-tested per protocol in
///   this workspace).
/// * `Native::output(decode_agent(i)) == DenseProtocol::output(i)`.
///
/// Encoding may **intern**: for interner-backed protocols `encode_agent`
/// assigns fresh indices on first appearance.  The decoded stint encodes
/// only at migration boundaries, so a stint that mints `Θ(n)` transient
/// states never pushes them through the interner.
pub trait AgentCodec: DenseProtocol + Clone + Send + 'static {
    /// The native protocol stepping decoded states; its `State` is the
    /// decoded per-agent struct and its `Output` matches the dense output.
    type Native: Protocol<Output = <Self as DenseProtocol>::Output> + Clone + Send;

    /// The native protocol value (shares any interner/parameters with
    /// `self`).
    fn native(&self) -> Self::Native;

    /// Decode a dense index into the native per-agent state.
    ///
    /// # Panics
    ///
    /// May panic if `index` has not been assigned to any state (interned
    /// protocols assign lazily).
    fn decode_agent(&self, index: usize) -> <Self::Native as Protocol>::State;

    /// Decode a dense index, returning `None` when the index has no state
    /// behind it (unassigned interned index or out of range).
    ///
    /// The default bounds-checks against [`num_states`](DenseProtocol::num_states)
    /// and decodes — correct only for **total** encodings where every index
    /// below `num_states()` is assigned (arithmetic packings like the dense
    /// backup counter).  Interner-backed codecs report their *capacity* as
    /// `num_states()`, so they **must** override this with a non-panicking
    /// lookup (e.g. [`StateInterner::try_get`](crate::StateInterner::try_get),
    /// as every interned codec in this workspace does) — otherwise
    /// [`AgentStint::count_of`] on an unassigned index would panic instead
    /// of returning 0.
    fn try_decode_agent(&self, index: usize) -> Option<<Self::Native as Protocol>::State> {
        if index < self.num_states() {
            Some(self.decode_agent(index))
        } else {
            None
        }
    }

    /// Encode a native state as its dense index, interning it on first
    /// appearance for interner-backed protocols.
    fn encode_agent(&self, state: &<Self::Native as Protocol>::State) -> usize;

    /// A short label for reports: which representation the stint steps.
    fn stint_label(&self) -> &'static str {
        "decoded"
    }
}

/// The driving surface the hybrid engine needs from a per-agent stint,
/// object-safe so protocols can hand back their own monomorphised stint
/// ([`DenseProtocol::agent_stint`]) without the engine naming the state type.
pub trait AgentStint<O>: fmt::Debug + Send {
    /// Execute `budget` further interactions.
    fn run(&mut self, budget: u64);
    /// Interactions executed by this stint so far.
    fn interactions(&self) -> u64;
    /// The population size `n`.
    fn population(&self) -> usize;
    /// Distinct live states (the monitor's occupancy signal), maintained
    /// incrementally — `O(1)` to read.  An undercount by the number of
    /// 64-bit state-hash collisions (`~q_occ²/2⁶⁴`, negligible).
    fn occupied_states(&self) -> usize;
    /// Tally the configuration back into dense state counts, interning any
    /// states minted since the stint began (the agent → dense boundary).
    fn counts(&self) -> Vec<u64>;
    /// Number of agents currently in the state behind dense index `state`
    /// (`0` if the index has no state behind it).
    fn count_of(&self, state: usize) -> u64;
    /// Output histogram of the current configuration.
    fn output_stats(&self) -> ConfigurationStats<O>;
    /// Move `k` agents from the state behind index `from` to the state
    /// behind index `to` (experiment setup).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] if either index has no state
    /// behind it or fewer than `k` agents are in `from`.
    fn transfer(&mut self, from: usize, to: usize, k: u64) -> Result<(), SimError>;
    /// Corrupt `k` agents chosen uniformly without replacement: each
    /// victim's state is replaced by the state behind the dense index
    /// `new_state(current_index, rng)`, decoded through the codec — the
    /// per-agent arm of [`crate::adversary`] fault injection.  All
    /// randomness comes from the caller's `rng`, never from the stint's
    /// schedule RNG.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] if `k` exceeds the population
    /// or `new_state` returns an index with no state behind it (the
    /// configuration may be partially corrupted in that case).
    fn corrupt(
        &mut self,
        k: u64,
        rng: &mut SmallRng,
        new_state: &mut dyn FnMut(usize, &mut SmallRng) -> usize,
    ) -> Result<(), SimError>;
    /// Which representation this stint steps (`"decoded"` or `"interned"`).
    fn kind(&self) -> &'static str;
    /// Clone into a fresh box (object-safe `Clone`).
    fn box_clone(&self) -> BoxedAgentStint<O>;
    /// Append this stint's full replay state — interaction count, schedule
    /// RNG, per-agent native states — to `out` (see [`crate::snapshot`]).
    ///
    /// The bytes are restored by
    /// [`DenseProtocol::restore_agent_stint`]
    /// (for codec-bearing protocols, via [`DecodedStint::restore_boxed`]).
    /// The census and hashes are *not* serialized: they are pure functions of
    /// the state vector and are rebuilt on restore.
    fn save_stint(&self, out: &mut Vec<u8>);
}

/// A boxed per-agent stint, the form [`DenseProtocol::agent_stint`] returns
/// and the hybrid engine drives.
pub type BoxedAgentStint<O> = Box<dyn AgentStint<O>>;

impl<O> Clone for BoxedAgentStint<O> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// A per-agent stint over **native structs**: a `Vec` of decoded states
/// stepped by the codec's native [`Protocol::interact`], with the occupancy
/// census maintained incrementally (see the module docs).
///
/// Construction decodes each occupied index once and fans the struct out by
/// its multiplicity (the dense → agent boundary); [`Self::counts`] encodes
/// each agent back (the agent → dense boundary, deduplicated so each
/// distinct state hits the interner once).  In between, the codec is never
/// consulted.
pub struct DecodedStint<P: AgentCodec> {
    codec: P,
    native: P::Native,
    states: Vec<<P::Native as Protocol>::State>,
    /// Census hash of each agent's current state (avoids re-hashing the
    /// pre-interaction state on updates).
    hashes: Vec<u64>,
    census: Census,
    occupied: usize,
    scheduler: UniformScheduler,
    rng: SmallRng,
    interactions: u64,
}

impl<P: AgentCodec> DecodedStint<P> {
    /// Expand a dense counts configuration into a per-agent stint, seeding
    /// the schedule RNG with `seed`.  Agents are laid out in state-index
    /// order — a fixed, representation-independent layout, so the hand-off
    /// is a pure function of the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the population (the sum of `counts`) is below 2 or if an
    /// occupied index has no state behind it.
    #[must_use]
    pub fn from_counts(codec: P, counts: &[u64], seed: u64) -> Self {
        let n: u64 = counts.iter().sum();
        assert!(n >= 2, "a population needs at least two agents, got {n}");
        let native = codec.native();
        let mut states = Vec::with_capacity(n as usize);
        let mut hashes = Vec::with_capacity(n as usize);
        let mut census = Census::default();
        for (s, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let state = codec.decode_agent(s);
            let h = state_hash(&state);
            *census.entry(h).or_insert(0) += c;
            for _ in 0..c {
                states.push(state.clone());
                hashes.push(h);
            }
        }
        let occupied = census.len();
        DecodedStint {
            codec,
            native,
            states,
            hashes,
            census,
            occupied,
            scheduler: UniformScheduler::new(),
            rng: seeded_rng(seed),
            interactions: 0,
        }
    }

    /// Boxed construction for [`DenseProtocol::agent_stint`] implementations.
    #[must_use]
    pub fn boxed(
        codec: P,
        counts: &[u64],
        seed: u64,
    ) -> BoxedAgentStint<<P as DenseProtocol>::Output>
    where
        <P as DenseProtocol>::Output: 'static,
        P::Native: 'static,
        <P::Native as Protocol>::State: PersistState,
    {
        Box::new(Self::from_counts(codec, counts, seed))
    }

    /// Rebuild a stint from bytes written by [`AgentStint::save_stint`] — the
    /// three-line body of
    /// [`DenseProtocol::restore_agent_stint`]
    /// overrides.
    ///
    /// The census, hashes, and occupancy counter are pure functions of the
    /// state vector and are rebuilt here rather than trusted from the bytes.
    ///
    /// # Errors
    ///
    /// [`SimError`] variants describing truncated, trailing, or
    /// population-degenerate payloads.
    pub fn restore_boxed(
        codec: P,
        bytes: &[u8],
    ) -> Result<BoxedAgentStint<<P as DenseProtocol>::Output>, SimError>
    where
        <P as DenseProtocol>::Output: 'static,
        P::Native: 'static,
        <P::Native as Protocol>::State: PersistState,
    {
        let mut r = SnapshotReader::new(bytes);
        let interactions = r.read::<u64>()?;
        let rng = unpersist_rng(&mut r)?;
        let states = r.read::<Vec<<P::Native as Protocol>::State>>()?;
        r.finish()?;
        if states.len() < 2 {
            return Err(SimError::SnapshotCorrupt {
                reason: format!("per-agent stint population {} is below 2", states.len()),
            });
        }
        let native = codec.native();
        let mut hashes = Vec::with_capacity(states.len());
        let mut census = Census::default();
        for state in &states {
            let h = state_hash(state);
            hashes.push(h);
            *census.entry(h).or_insert(0) += 1;
        }
        let occupied = census.len();
        Ok(Box::new(DecodedStint {
            codec,
            native,
            states,
            hashes,
            census,
            occupied,
            scheduler: UniformScheduler::new(),
            rng,
            interactions,
        }))
    }

    /// The codec this stint decodes/encodes through.
    #[must_use]
    pub fn codec(&self) -> &P {
        &self.codec
    }

    /// Borrow the native per-agent states.
    #[must_use]
    pub fn states(&self) -> &[<P::Native as Protocol>::State] {
        &self.states
    }

    /// Execute exactly one interaction and maintain the census.
    pub fn step(&mut self) {
        let n = self.states.len();
        let (i, j) = self.scheduler.next_pair(n, &mut self.rng);
        debug_assert_ne!(i, j);
        let (a, b) = if i < j {
            let (lo, hi) = self.states.split_at_mut(j);
            (&mut lo[i], &mut hi[0])
        } else {
            let (lo, hi) = self.states.split_at_mut(i);
            (&mut hi[0], &mut lo[j])
        };
        self.native.interact(a, b, &mut self.rng);
        self.interactions += 1;
        self.refresh_census(i);
        self.refresh_census(j);
    }

    /// Re-census agent `idx` after a possible state change.
    fn refresh_census(&mut self, idx: usize) {
        let new_hash = state_hash(&self.states[idx]);
        let old_hash = self.hashes[idx];
        if new_hash == old_hash {
            return;
        }
        match self.census.entry(old_hash) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                *e.get_mut() -= 1;
                if *e.get() == 0 {
                    e.remove();
                    self.occupied -= 1;
                }
            }
            std::collections::hash_map::Entry::Vacant(_) => {
                unreachable!("census lost track of a live state hash")
            }
        }
        let slot = self.census.entry(new_hash).or_insert(0);
        if *slot == 0 {
            self.occupied += 1;
        }
        *slot += 1;
        self.hashes[idx] = new_hash;
    }
}

impl<P: AgentCodec> Clone for DecodedStint<P>
where
    P::Native: Clone,
{
    fn clone(&self) -> Self {
        DecodedStint {
            codec: self.codec.clone(),
            native: self.native.clone(),
            states: self.states.clone(),
            hashes: self.hashes.clone(),
            census: self.census.clone(),
            occupied: self.occupied,
            scheduler: self.scheduler,
            rng: self.rng.clone(),
            interactions: self.interactions,
        }
    }
}

impl<P: AgentCodec> fmt::Debug for DecodedStint<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DecodedStint")
            .field("kind", &self.codec.stint_label())
            .field("population", &self.states.len())
            .field("interactions", &self.interactions)
            .field("occupied", &self.occupied)
            .finish_non_exhaustive()
    }
}

impl<P> AgentStint<<P as DenseProtocol>::Output> for DecodedStint<P>
where
    P: AgentCodec,
    P::Native: 'static,
    <P as DenseProtocol>::Output: 'static,
    <P::Native as Protocol>::State: PersistState,
{
    fn run(&mut self, budget: u64) {
        for _ in 0..budget {
            self.step();
        }
    }

    fn interactions(&self) -> u64 {
        self.interactions
    }

    fn population(&self) -> usize {
        self.states.len()
    }

    fn occupied_states(&self) -> usize {
        self.occupied
    }

    fn counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.codec.num_states()];
        // Deduplicate through a local index cache so each distinct state
        // hits the (locked, SipHashed) interner once, not once per agent.
        let mut index_of: HashMap<
            <P::Native as Protocol>::State,
            usize,
            BuildHasherDefault<StateHasher>,
        > = HashMap::default();
        for state in &self.states {
            let idx = *index_of
                .entry(state.clone())
                .or_insert_with(|| self.codec.encode_agent(state));
            counts[idx] += 1;
        }
        counts
    }

    fn count_of(&self, state: usize) -> u64 {
        match self.codec.try_decode_agent(state) {
            Some(target) => self.states.iter().filter(|&s| *s == target).count() as u64,
            None => 0,
        }
    }

    fn output_stats(&self) -> ConfigurationStats<<P as DenseProtocol>::Output> {
        ConfigurationStats::from_states(&self.native, &self.states)
    }

    fn transfer(&mut self, from: usize, to: usize, k: u64) -> Result<(), SimError> {
        let from_state = self.codec.try_decode_agent(from);
        let to_state = self.codec.try_decode_agent(to);
        let (Some(from_state), Some(to_state)) = (from_state, to_state) else {
            return Err(SimError::InvalidParameter {
                name: "transfer",
                reason: format!(
                    "states ({from}, {to}) outside the assigned state space 0..{}",
                    self.codec.num_states()
                ),
            });
        };
        let available = self.states.iter().filter(|&s| *s == from_state).count() as u64;
        if available < k {
            return Err(SimError::InvalidParameter {
                name: "transfer",
                reason: format!("cannot move {k} agents out of state {from} holding {available}"),
            });
        }
        let mut moved = 0u64;
        for idx in 0..self.states.len() {
            if moved == k {
                break;
            }
            if self.states[idx] == from_state {
                self.states[idx] = to_state.clone();
                moved += 1;
                self.refresh_census(idx);
            }
        }
        Ok(())
    }

    fn corrupt(
        &mut self,
        k: u64,
        rng: &mut SmallRng,
        new_state: &mut dyn FnMut(usize, &mut SmallRng) -> usize,
    ) -> Result<(), SimError> {
        let n = self.states.len();
        if k > n as u64 {
            return Err(SimError::InvalidParameter {
                name: "corrupt",
                reason: format!("cannot corrupt {k} of {n} agents"),
            });
        }
        // Partial Fisher–Yates: after `k` swap steps the prefix of `idx` is
        // a uniform k-subset of the agents, in a uniform order.
        let mut idx: Vec<usize> = (0..n).collect();
        for v in 0..k as usize {
            let swap = v + rng.gen_range(0..n - v);
            idx.swap(v, swap);
            let victim = idx[v];
            let current = self.codec.encode_agent(&self.states[victim]);
            let target = new_state(current, rng);
            let state =
                self.codec
                    .try_decode_agent(target)
                    .ok_or_else(|| SimError::InvalidParameter {
                        name: "corrupt",
                        reason: format!(
                            "target state {target} outside the assigned state space 0..{}",
                            self.codec.num_states()
                        ),
                    })?;
            self.states[victim] = state;
            self.refresh_census(victim);
        }
        Ok(())
    }

    fn kind(&self) -> &'static str {
        self.codec.stint_label()
    }

    fn box_clone(&self) -> BoxedAgentStint<<P as DenseProtocol>::Output> {
        Box::new(self.clone())
    }

    fn save_stint(&self, out: &mut Vec<u8>) {
        self.interactions.persist(out);
        persist_rng(&self.rng, out);
        self.states.persist(out);
    }
}

/// The identity codec over dense indices: the "native" state *is* the `u32`
/// index and stepping goes through [`DenseProtocol::transition`] — for
/// interned protocols, straight through the interner, exactly like the PR 4
/// per-agent stint.
///
/// The hybrid engine falls back to this codec for protocols that do not
/// override [`DenseProtocol::agent_stint`], and uses it for every protocol
/// when [`HybridConfig::interned_stints`](crate::HybridConfig) pins the
/// comparison baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexCodec<P>(pub P);

impl<P: DenseProtocol> Protocol for IndexCodec<P> {
    type State = u32;
    type Output = <P as DenseProtocol>::Output;

    fn initial_state(&self) -> u32 {
        // Dense index spaces are bounded well below u32::MAX. ppcheck: allow(no-unwrap)
        u32::try_from(self.0.initial_state()).expect("dense state spaces fit in u32")
    }

    fn interact(&self, initiator: &mut u32, responder: &mut u32, _rng: &mut SmallRng) {
        let (a, b) = self.0.transition(*initiator as usize, *responder as usize);
        *initiator = a as u32;
        *responder = b as u32;
    }

    fn output(&self, state: &u32) -> Self::Output {
        self.0.output(*state as usize)
    }

    fn name(&self) -> &'static str {
        self.0.name()
    }
}

impl<P: DenseProtocol> DenseProtocol for IndexCodec<P> {
    type Output = <P as DenseProtocol>::Output;

    fn num_states(&self) -> usize {
        self.0.num_states()
    }
    fn initial_state(&self) -> usize {
        self.0.initial_state()
    }
    fn transition(&self, initiator: usize, responder: usize) -> (usize, usize) {
        self.0.transition(initiator, responder)
    }
    fn output(&self, state: usize) -> Self::Output {
        self.0.output(state)
    }
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn dynamic(&self) -> bool {
        self.0.dynamic()
    }
    fn discovered_states(&self) -> Option<usize> {
        self.0.discovered_states()
    }
}

impl<P: DenseProtocol + Clone + Send + 'static> AgentCodec for IndexCodec<P> {
    type Native = IndexCodec<P>;

    fn native(&self) -> Self::Native {
        self.clone()
    }

    fn decode_agent(&self, index: usize) -> u32 {
        // Dense index spaces are bounded well below u32::MAX. ppcheck: allow(no-unwrap)
        u32::try_from(index).expect("dense state spaces fit in u32")
    }

    fn encode_agent(&self, state: &u32) -> usize {
        *state as usize
    }

    fn stint_label(&self) -> &'static str {
        "interned"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-state one-way epidemic on dense indices.
    #[derive(Debug, Clone, Copy)]
    struct Rumor;
    impl DenseProtocol for Rumor {
        type Output = bool;
        fn num_states(&self) -> usize {
            2
        }
        fn initial_state(&self) -> usize {
            0
        }
        fn transition(&self, u: usize, v: usize) -> (usize, usize) {
            (u.max(v), v)
        }
        fn output(&self, s: usize) -> bool {
            s == 1
        }
    }

    #[test]
    fn index_codec_round_trips_and_steps_the_dense_transition() {
        let codec = IndexCodec(Rumor);
        for i in 0..2 {
            assert_eq!(codec.encode_agent(&codec.decode_agent(i)), i);
        }
        let mut u = 0u32;
        let mut v = 1u32;
        let mut rng = seeded_rng(0);
        Protocol::interact(&codec, &mut u, &mut v, &mut rng);
        assert_eq!((u, v), (1, 1));
    }

    #[test]
    fn stint_preserves_the_configuration_mass_and_counts_interactions() {
        let counts = vec![9_999u64, 1];
        let mut stint = DecodedStint::from_counts(IndexCodec(Rumor), &counts, 3);
        assert_eq!(stint.population(), 10_000);
        assert_eq!(stint.occupied_states(), 2);
        stint.run(5_000);
        assert_eq!(stint.interactions(), 5_000);
        let tallied = stint.counts();
        assert_eq!(tallied.iter().sum::<u64>(), 10_000);
        assert_eq!(tallied.len(), 2);
    }

    #[test]
    fn census_tracks_occupancy_to_saturation() {
        let counts = vec![499u64, 1];
        let mut stint = DecodedStint::from_counts(IndexCodec(Rumor), &counts, 11);
        // Run the epidemic to saturation: occupancy collapses 2 → 1.
        while stint.count_of(1) < 500 {
            stint.run(1_000);
        }
        assert_eq!(stint.occupied_states(), 1);
        assert_eq!(stint.counts(), vec![0, 500]);
        assert_eq!(stint.output_stats().count_of(&true), 500);
    }

    #[test]
    fn stint_matches_the_sequential_simulator_trajectory_exactly() {
        // Same seed, same scheduler, same RNG consumption: the decoded stint
        // over the identity codec must replicate Simulator<DenseAdapter<_>>
        // bit for bit — this is what keeps the hybrid engine's interned
        // fallback trajectory-compatible with the PR 4 behaviour.
        use crate::dense::DenseAdapter;
        use crate::simulator::Simulator;
        let n = 300usize;
        let mut reference = Simulator::new(DenseAdapter(Rumor), n, 42).unwrap();
        // The stint lays agents out in state-index order, so the one infected
        // agent sits at the *end* of its vector — lay the reference out the
        // same way so the two per-agent vectors can be compared directly.
        reference.states_mut()[n - 1] = 1;
        let counts = vec![n as u64 - 1, 1];
        let mut stint = DecodedStint::from_counts(IndexCodec(Rumor), &counts, 42);
        for _ in 0..50 {
            reference.run(100);
            stint.run(100);
            assert_eq!(reference.states(), stint.states());
        }
    }

    #[test]
    fn transfer_moves_agents_and_validates() {
        let counts = vec![10u64, 0];
        let mut stint = DecodedStint::from_counts(IndexCodec(Rumor), &counts, 0);
        assert!(stint.transfer(0, 1, 11).is_err());
        assert!(stint.transfer(0, 5, 1).is_err());
        stint.transfer(0, 1, 4).unwrap();
        assert_eq!(stint.count_of(1), 4);
        assert_eq!(stint.occupied_states(), 2);
        assert_eq!(stint.counts(), vec![6, 4]);
    }

    #[test]
    fn boxed_stints_clone_and_report_their_kind() {
        let counts = vec![5u64, 5];
        let stint: BoxedAgentStint<bool> = DecodedStint::boxed(IndexCodec(Rumor), &counts, 1);
        assert_eq!(stint.kind(), "interned");
        let mut copy = stint.clone();
        copy.run(100);
        assert_eq!(stint.interactions(), 0, "clone is independent");
        assert_eq!(copy.interactions(), 100);
    }

    #[test]
    fn save_stint_restore_boxed_round_trips_and_replays_bit_identically() {
        let counts = vec![499u64, 1];
        let mut reference = DecodedStint::from_counts(IndexCodec(Rumor), &counts, 11);
        reference.run(1_000);
        let mut bytes = Vec::new();
        reference.save_stint(&mut bytes);

        let mut restored = DecodedStint::restore_boxed(IndexCodec(Rumor), &bytes).unwrap();
        assert_eq!(restored.interactions(), 1_000);
        assert_eq!(restored.occupied_states(), reference.occupied_states());
        assert_eq!(restored.counts(), reference.counts());

        reference.run(2_000);
        restored.run(2_000);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        reference.save_stint(&mut a);
        restored.save_stint(&mut b);
        assert_eq!(a, b, "resumed stint diverged from the uninterrupted one");
    }

    #[test]
    fn restore_boxed_rejects_truncated_and_degenerate_payloads() {
        let counts = vec![3u64, 1];
        let stint = DecodedStint::from_counts(IndexCodec(Rumor), &counts, 0);
        let mut bytes = Vec::new();
        stint.save_stint(&mut bytes);
        assert!(DecodedStint::restore_boxed(IndexCodec(Rumor), &bytes[..bytes.len() - 1]).is_err());

        let lonely = DecodedStint {
            codec: IndexCodec(Rumor),
            native: IndexCodec(Rumor),
            states: vec![0u32],
            hashes: vec![state_hash(&0u32)],
            census: Census::default(),
            occupied: 1,
            scheduler: UniformScheduler::new(),
            rng: seeded_rng(0),
            interactions: 0,
        };
        let mut bytes = Vec::new();
        lonely.save_stint(&mut bytes);
        assert!(matches!(
            DecodedStint::restore_boxed(IndexCodec(Rumor), &bytes),
            Err(SimError::SnapshotCorrupt { .. })
        ));
    }

    #[test]
    fn state_hasher_distinguishes_field_orderings() {
        // Sanity: the word-mixer is order-sensitive (rotate before xor).
        assert_ne!(state_hash(&(1u64, 2u64)), state_hash(&(2u64, 1u64)));
        assert_ne!(state_hash(&[0u8; 16]), state_hash(&[0u8; 24]));
    }
}
