//! Deterministic seeding utilities.
//!
//! Experiments sweep over many `(population size, trial)` combinations; every trial
//! must be reproducible from a single master seed.  [`derive_seed`] implements the
//! SplitMix64 finaliser which maps `(master, stream)` pairs to well-distributed,
//! independent-looking 64-bit seeds.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Derive a per-trial seed from a master seed and a stream index.
///
/// Uses the SplitMix64 output function, so consecutive stream indices produce
/// uncorrelated seeds even for small master seeds.
///
/// # Examples
///
/// ```rust
/// let a = ppsim::derive_seed(42, 0);
/// let b = ppsim::derive_seed(42, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, ppsim::derive_seed(42, 0));
/// ```
#[must_use]
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut z = master
        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Construct the fast non-cryptographic RNG used throughout the workspace from a seed.
///
/// # Examples
///
/// ```rust
/// use rand::Rng;
/// let mut rng = ppsim::seeded_rng(7);
/// let _: u64 = rng.gen();
/// ```
#[must_use]
pub fn seeded_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
    }

    #[test]
    fn derive_seed_streams_are_distinct() {
        let seeds: HashSet<u64> = (0..1000).map(|i| derive_seed(0, i)).collect();
        assert_eq!(seeds.len(), 1000);
    }

    #[test]
    fn derive_seed_masters_are_distinct() {
        let seeds: HashSet<u64> = (0..1000).map(|m| derive_seed(m, 0)).collect();
        assert_eq!(seeds.len(), 1000);
    }

    #[test]
    fn seeded_rng_reproducible() {
        let mut a = seeded_rng(99);
        let mut b = seeded_rng(99);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }
}
