//! On-the-fly state enumeration for dense protocols with large or unbounded
//! state spaces.
//!
//! The batched engines index configurations by dense state indices `0..q`.
//! For the simple auxiliary protocols (epidemic, junta, phase clock) a fixed
//! product encoding is easy to write down, but the paper's *composed* counting
//! protocols carry per-agent state a fixed encoding cannot hold: an absolute
//! phase counter (the sequential implementations keep it unbounded and reduce
//! it modulo small constants where the paper does), `u64` token loads in the
//! `CountExact` stages, and per-round random values in the leader elections.
//! The product of those ranges is astronomically larger than the number of
//! states that ever *occur* — which Theorem 1 of the paper bounds by
//! `O(log n · log log n)` for `Approximate` (per phase of the run; ~2·10⁵
//! over a full `n = 10⁶` execution) and Theorem 2 by `Õ(n)` for `CountExact`
//! (~1.5·10⁶ at `n = 10⁶`, dominated by refinement-stage load values).
//!
//! [`StateInterner`] closes that gap: it assigns dense indices to rich state
//! structs **in order of first appearance**.  A protocol built on an interner
//! reports a fixed index-space *capacity* as its `num_states()` (which only
//! sizes the engines' flat per-state buffers) while the set of live indices
//! grows lazily.  Because the engines iterate occupied states only, the unused
//! capacity costs memory, never time.
//!
//! Interners are shared behind [`Arc`](std::sync::Arc), so cloning a protocol (as the sharded
//! engine does for its per-shard copies) keeps all copies in one consistent
//! index space.  Protocols that intern must return `true` from
//! [`DenseProtocol::dynamic`](crate::DenseProtocol::dynamic) so the engines
//! skip eager per-state precomputation and keep the interning order — and with
//! it the trajectory — a pure function of the seed.
//!
//! ```rust
//! use ppsim::StateInterner;
//!
//! let my_states = StateInterner::with_capacity(16);
//! let a = my_states.intern((3u32, false));
//! let b = my_states.intern((7u32, true));
//! assert_eq!(a, 0, "indices are assigned in order of first appearance");
//! assert_eq!(b, 1);
//! assert_eq!(my_states.intern((3u32, false)), a, "re-interning is stable");
//! assert_eq!(my_states.get(b), (7u32, true));
//! assert_eq!(my_states.len(), 2);
//! ```

// The interner map serves state->index lookups; enumeration order is
// carried by the dense Vec, not the map. ppcheck: allow(hashmap-iter)
use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;
use std::sync::RwLock;

/// A bijection between rich state values and dense indices `0..len`, grown on
/// first use and shared (behind an [`Arc`](std::sync::Arc)) by every clone of
/// a dynamic protocol.
///
/// `capacity` is the fixed ceiling the owning protocol reports as its
/// `num_states()`; [`StateInterner::intern`] panics when a run discovers more
/// distinct states than that, with a message naming the fix (construct the
/// protocol with a larger capacity).
#[derive(Debug)]
pub struct StateInterner<S> {
    capacity: usize,
    inner: RwLock<Inner<S>>,
}

#[derive(Debug)]
struct Inner<S> {
    /// Index → state.
    states: Vec<S>,
    /// State → index.
    index: HashMap<S, u32>,
}

impl<S: Copy + Eq + Hash + Debug> StateInterner<S> {
    /// An empty interner whose owning protocol will report `capacity` as its
    /// `num_states()`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `capacity >= u32::MAX` (dense indices are
    /// 32-bit in the engines' tables, which index `0..capacity` and reserve
    /// `u32::MAX` itself as a never-valid index — so the ceiling is
    /// `u32::MAX − 1` distinct states, rejected here at construction instead
    /// of overflowing deep inside a run).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(
            capacity > 0,
            "an interner needs room for at least one state"
        );
        // Strictly below u32::MAX, not `<=`: the engines' delta/occupancy
        // tables index `0..capacity` with u32 entries and `capacity` itself
        // must stay representable next to them.  Accepting `capacity ==
        // u32::MAX` used to pass construction and could only fail mid-run
        // once the interner approached the ceiling.
        assert!(
            (capacity as u64) < u64::from(u32::MAX),
            "dense state indices are 32-bit (ceiling {} states); capacity \
             {capacity} is out of range",
            u32::MAX - 1
        );
        StateInterner {
            capacity,
            inner: RwLock::new(Inner {
                states: Vec::new(),
                index: HashMap::new(),
            }),
        }
    }

    /// The fixed index-space size the owning protocol reports as `num_states()`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The number of distinct states interned so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .read()
            // A poisoned lock means another thread already panicked mid-intern;
            // propagating the panic is the only sound response.
            // ppcheck: allow(no-unwrap)
            .expect("interner lock poisoned")
            .states
            .len()
    }

    /// Whether no state has been interned yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The dense index of `state`, assigning the next free index on first
    /// appearance.
    ///
    /// # Panics
    ///
    /// Panics if the state is new and the interner already holds `capacity`
    /// distinct states.
    #[must_use]
    pub fn intern(&self, state: S) -> usize {
        if let Some(&i) = self
            .inner
            .read()
            // A poisoned lock means another thread already panicked mid-intern;
            // propagating the panic is the only sound response.
            // ppcheck: allow(no-unwrap)
            .expect("interner lock poisoned")
            .index
            .get(&state)
        {
            return i as usize;
        }
        // A poisoned lock means another thread already panicked mid-intern;
        // propagating the panic is the only sound response.
        // ppcheck: allow(no-unwrap)
        let mut inner = self.inner.write().expect("interner lock poisoned");
        // Re-check under the write lock: another thread may have interned the
        // state between our read and write acquisitions.
        if let Some(&i) = inner.index.get(&state) {
            return i as usize;
        }
        let i = inner.states.len();
        assert!(
            i < self.capacity,
            "state interner exhausted its capacity of {} distinct states \
             (while interning {state:?}); construct the protocol with a larger \
             capacity",
            self.capacity
        );
        inner.states.push(state);
        inner.index.insert(state, i as u32);
        i
    }

    /// The state behind a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has not been assigned yet.
    #[must_use]
    pub fn get(&self, index: usize) -> S {
        // A poisoned lock means another thread already panicked mid-intern;
        // propagating the panic is the only sound response.
        // ppcheck: allow(no-unwrap)
        let inner = self.inner.read().expect("interner lock poisoned");
        *inner.states.get(index).unwrap_or_else(|| {
            panic!(
                "dense index {index} has no interned state (only {} assigned)",
                inner.states.len()
            )
        })
    }

    /// The state behind a dense index, or `None` if the index has not been
    /// assigned yet — the non-panicking decode the agent-state codecs
    /// ([`AgentCodec`](crate::stint::AgentCodec)) build their
    /// `try_decode_agent` on.
    #[must_use]
    pub fn try_get(&self, index: usize) -> Option<S> {
        self.inner
            .read()
            // A poisoned lock means another thread already panicked mid-intern;
            // propagating the panic is the only sound response.
            // ppcheck: allow(no-unwrap)
            .expect("interner lock poisoned")
            .states
            .get(index)
            .copied()
    }

    /// All interned states in index order — the serializable contents of the
    /// interner, used by the snapshot layer
    /// ([`ppsim::snapshot`](crate::snapshot)).  Index `i` of the returned
    /// vector holds the state behind dense index `i`.
    #[must_use]
    pub fn contents(&self) -> Vec<S> {
        self.inner
            .read()
            // A poisoned lock means another thread already panicked mid-intern;
            // propagating the panic is the only sound response.
            // ppcheck: allow(no-unwrap)
            .expect("interner lock poisoned")
            .states
            .clone()
    }

    /// Replace the interner's entire contents with `states` (state `i` gets
    /// dense index `i`), discarding everything currently interned.
    ///
    /// This is the restore half of checkpointing: a snapshot records the
    /// interner as of the checkpoint, and rewinding a run must also *forget*
    /// states discovered after it — otherwise a replay would find different
    /// indices already assigned and diverge.  The replacement propagates to
    /// every clone of the owning protocol, since all clones share this
    /// interner behind an `Arc` — which is exactly the whole-process rewind
    /// semantics a restore wants.
    ///
    /// # Errors
    ///
    /// [`SimError::SnapshotMismatch`](crate::SimError::SnapshotMismatch) if
    /// `states` is larger than this interner's capacity or contains a
    /// duplicate state (snapshots written by this crate contain neither).
    pub fn replace_contents(&self, states: Vec<S>) -> Result<(), crate::SimError> {
        if states.len() > self.capacity {
            return Err(crate::SimError::SnapshotMismatch {
                reason: format!(
                    "snapshot interned {} states but this interner's capacity is {}",
                    states.len(),
                    self.capacity
                ),
            });
        }
        let mut index = HashMap::with_capacity(states.len());
        for (i, &s) in states.iter().enumerate() {
            if index.insert(s, i as u32).is_some() {
                return Err(crate::SimError::SnapshotMismatch {
                    reason: format!("snapshot interner contents repeat state {s:?} at index {i}"),
                });
            }
        }
        // A poisoned lock means another thread already panicked mid-intern;
        // propagating the panic is the only sound response.
        // ppcheck: allow(no-unwrap)
        let mut inner = self.inner.write().expect("interner lock poisoned");
        inner.states = states;
        inner.index = index;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_assigns_indices_in_first_appearance_order() {
        let interner = StateInterner::with_capacity(8);
        assert!(interner.is_empty());
        assert_eq!(interner.intern('x'), 0);
        assert_eq!(interner.intern('y'), 1);
        assert_eq!(interner.intern('x'), 0);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.get(0), 'x');
        assert_eq!(interner.get(1), 'y');
        assert_eq!(interner.capacity(), 8);
    }

    #[test]
    #[should_panic(expected = "exhausted its capacity")]
    fn interning_beyond_capacity_panics_with_guidance() {
        let interner = StateInterner::with_capacity(2);
        let _ = interner.intern(0u8);
        let _ = interner.intern(1u8);
        let _ = interner.intern(2u8);
    }

    #[test]
    #[should_panic(expected = "has no interned state")]
    fn reading_an_unassigned_index_panics() {
        let interner = StateInterner::<u8>::with_capacity(4);
        let _ = interner.get(0);
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn zero_capacity_is_rejected() {
        let _ = StateInterner::<u8>::with_capacity(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn capacity_at_the_u32_sentinel_is_rejected_up_front() {
        // `u32::MAX` used to be accepted and only blow up mid-run; the bound
        // is now enforced at construction.
        let _ = StateInterner::<u64>::with_capacity(u32::MAX as usize);
    }

    #[test]
    fn capacity_just_below_the_ceiling_constructs_and_interns() {
        // The interner itself allocates nothing proportional to the capacity,
        // so the largest legal index space is cheap to hold.
        let interner = StateInterner::<u64>::with_capacity(u32::MAX as usize - 1);
        assert_eq!(interner.capacity(), u32::MAX as usize - 1);
        assert_eq!(interner.intern(7), 0);
        assert_eq!(interner.get(0), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn capacity_beyond_u32_is_rejected() {
        let _ = StateInterner::<u64>::with_capacity(u32::MAX as usize + 10);
    }

    #[test]
    fn contents_round_trip_through_replace() {
        let interner = StateInterner::with_capacity(8);
        let _ = interner.intern('c');
        let _ = interner.intern('a');
        let _ = interner.intern('b');
        let saved = interner.contents();
        assert_eq!(saved, vec!['c', 'a', 'b'], "contents are in index order");

        // A later run discovers more states...
        let _ = interner.intern('z');
        assert_eq!(interner.len(), 4);

        // ...and restoring rewinds the index space, forgetting 'z'.
        let fresh = StateInterner::with_capacity(8);
        fresh.replace_contents(saved).unwrap();
        assert_eq!(fresh.len(), 3);
        assert_eq!(fresh.get(0), 'c');
        assert_eq!(fresh.get(2), 'b');
        assert_eq!(fresh.intern('a'), 1, "restored index map is consistent");
        assert_eq!(
            fresh.intern('z'),
            3,
            "new states continue after the restored ones"
        );
    }

    #[test]
    fn replace_contents_validates_capacity_and_duplicates() {
        let interner = StateInterner::with_capacity(2);
        assert!(interner.replace_contents(vec![1u8, 2, 3]).is_err());
        let interner = StateInterner::with_capacity(8);
        assert!(interner.replace_contents(vec![1u8, 2, 1]).is_err());
        // A failed replace leaves the interner untouched.
        let _ = interner.intern(9u8);
        assert!(interner.replace_contents(vec![5u8, 5]).is_err());
        assert_eq!(interner.get(0), 9);
    }

    #[test]
    fn shared_interner_is_consistent_across_clones_of_the_handle() {
        use std::sync::Arc;
        let interner = Arc::new(StateInterner::with_capacity(16));
        let other = Arc::clone(&interner);
        let a = interner.intern(41u64);
        assert_eq!(other.intern(41u64), a);
        assert_eq!(other.get(a), 41);
        assert_eq!(other.len(), 1);
    }
}
