//! Collision-free block primitives shared by the batched and sharded engines.
//!
//! Both [`BatchedSimulator`](crate::BatchedSimulator) and
//! [`ShardedBatchedSimulator`](crate::ShardedBatchedSimulator) advance a
//! counts-vector configuration by blocks of interactions on pairwise-distinct
//! agents.  The pieces they share live here:
//!
//! * [`DeltaTable`] — the validated, optionally precomputed transition table;
//! * [`Occupancy`] — the duplicate-free list of possibly-occupied states that
//!   keeps every per-block loop `O(q_occupied)` instead of `O(q)`;
//! * [`TouchSet`] — a flat per-state accumulator for the agents a block has
//!   already touched, merged back into the configuration once per block;
//! * [`draw_one`] / [`pair_classes`] — categorical draws against a sparse
//!   multiset and the random-contingency-table pairing of initiator classes
//!   with responder classes.
//!
//! The application path is deliberately branch-light: transitions write into
//! the flat `TouchSet` accumulator indexed by state, and the occupied /
//! touched index lists confine all scans to live states, so the `O(q²)` class
//! pairing compiles to tight index arithmetic over contiguous buffers.

use std::cell::RefCell;
// Keyed memo lookups only, with a deterministic hasher; iteration
// order never feeds a simulation decision. ppcheck: allow(hashmap-iter)
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use rand::rngs::SmallRng;
use rand::Rng;

use crate::dense::DenseProtocol;
use crate::error::SimError;
use crate::sample::conditional_class_draw;

/// Precompute the `q × q` transition table only while it stays comfortably in
/// cache; beyond this, transitions are evaluated on the fly for the occupied
/// state pairs only.
pub(crate) const TABLE_MAX_STATES: usize = 256;

/// A minimal multiplicative hasher for the `δ`-memo's `u64` pair keys
/// (`initiator << 32 | responder`): a single `wrapping_mul` mixes the bits far
/// faster than SipHash, and the memo is engine-private so no untrusted keys
/// reach it.
#[derive(Debug, Default, Clone)]
pub(crate) struct PairKeyHasher(u64);

impl Hasher for PairKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }
    fn write_u64(&mut self, i: u64) {
        // Fibonacci-style multiplicative mix; the odd constant is 2⁶⁴/φ.
        self.0 = (self.0 ^ i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type PairMemo = HashMap<u64, (u32, u32), BuildHasherDefault<PairKeyHasher>>;

/// Entry cap for the δ-pair memo.  Hits come from the small *currently
/// occupied* pair set (a few thousand entries); protocols whose state churn
/// mints fresh pairs indefinitely (e.g. a wide balancing transient) would
/// otherwise grow the map without bound.  Clearing on overflow keeps memory
/// bounded (~tens of MB) and the hot working set repopulates within a block.
const DELTA_MEMO_MAX_ENTRIES: usize = 1 << 20;

/// The transition function `δ` of a dense protocol, validated once and — for
/// table-sized state spaces — precomputed into a flat `q × q` lookup table.
///
/// Dynamic (interned) protocols get a lazily filled per-pair memo instead:
/// their `transition` walks decode → interact → re-encode through the state
/// interner, which costs hundreds of nanoseconds, while the occupied-pair
/// working set repeats heavily across consecutive blocks.  The memo is sound
/// because `δ` is pure and interned indices are stable for the lifetime of a
/// run.
#[derive(Debug, Clone)]
pub(crate) struct DeltaTable {
    q: usize,
    table: Option<Vec<(u32, u32)>>,
    memo: Option<RefCell<PairMemo>>,
}

impl DeltaTable {
    /// Validate the protocol's declared state space and build the table.
    ///
    /// Returns the same [`SimError::InvalidParameter`] diagnoses as the
    /// engines' constructors: empty state space, out-of-range initial state,
    /// or (for eagerly tabled spaces) a transition leaving `0..q`.
    pub(crate) fn new<P: DenseProtocol>(protocol: &P) -> Result<Self, SimError> {
        let q = protocol.num_states();
        if q == 0 {
            return Err(SimError::InvalidParameter {
                name: "num_states",
                reason: "the state space must not be empty".into(),
            });
        }
        let q0 = protocol.initial_state();
        if q0 >= q {
            return Err(SimError::InvalidParameter {
                name: "initial_state",
                reason: format!("initial state {q0} outside the state space 0..{q}"),
            });
        }
        // Dynamic (interned) protocols have no states behind most indices at
        // construction time, so their δ can only ever be evaluated lazily.
        let table = if q <= TABLE_MAX_STATES && !protocol.dynamic() {
            let mut t = Vec::with_capacity(q * q);
            for i in 0..q {
                for j in 0..q {
                    let (a, b) = protocol.transition(i, j);
                    if a >= q || b >= q {
                        return Err(SimError::InvalidParameter {
                            name: "transition",
                            reason: format!(
                                "δ({i}, {j}) = ({a}, {b}) leaves the state space 0..{q}"
                            ),
                        });
                    }
                    t.push((a as u32, b as u32));
                }
            }
            Some(t)
        } else {
            None
        };
        let memo = protocol
            .dynamic()
            .then(|| RefCell::new(PairMemo::default()));
        Ok(DeltaTable { q, table, memo })
    }

    /// The number of states `q` the table was validated against.
    pub(crate) fn num_states(&self) -> usize {
        self.q
    }

    /// `δ(i, j)`, via the precomputed table or the dynamic-protocol memo when
    /// available.
    #[inline]
    pub(crate) fn eval<P: DenseProtocol>(
        &self,
        protocol: &P,
        i: usize,
        j: usize,
    ) -> (usize, usize) {
        if let Some(t) = &self.table {
            let (a, b) = t[i * self.q + j];
            return (a as usize, b as usize);
        }
        if let Some(memo) = &self.memo {
            let key = (i as u64) << 32 | j as u64;
            let mut memo = memo.borrow_mut();
            if let Some(&(a, b)) = memo.get(&key) {
                return (a as usize, b as usize);
            }
            let (a, b) = protocol.transition(i, j);
            assert!(
                a < self.q && b < self.q,
                "δ({i}, {j}) = ({a}, {b}) leaves the state space 0..{}",
                self.q
            );
            if memo.len() >= DELTA_MEMO_MAX_ENTRIES {
                memo.clear();
            }
            memo.insert(key, (a as u32, b as u32));
            return (a, b);
        }
        let (a, b) = protocol.transition(i, j);
        assert!(
            a < self.q && b < self.q,
            "δ({i}, {j}) = ({a}, {b}) leaves the state space 0..{}",
            self.q
        );
        (a, b)
    }
}

/// The duplicate-free superset of `{s : counts[s] > 0}`: a dense membership
/// bitmap plus an index list, so per-block work never scans empty regions of
/// large state spaces.
#[derive(Debug, Clone)]
pub(crate) struct Occupancy {
    list: Vec<u32>,
    flags: Vec<bool>,
}

impl Occupancy {
    /// An occupancy set over `q` states with `initial` marked occupied.
    pub(crate) fn new(q: usize, initial: usize) -> Self {
        let mut flags = vec![false; q];
        flags[initial] = true;
        Occupancy {
            list: vec![initial as u32],
            flags,
        }
    }

    /// The possibly-occupied state indices (may include states whose count
    /// has dropped to zero since the last [`Self::compact`]).
    #[inline]
    pub(crate) fn as_slice(&self) -> &[u32] {
        &self.list
    }

    /// Mark `s` as possibly occupied.
    #[inline]
    pub(crate) fn mark(&mut self, s: usize) {
        if !self.flags[s] {
            self.flags[s] = true;
            self.list.push(s as u32);
        }
    }

    /// Unmark every state, in `O(|list|)`.
    pub(crate) fn clear(&mut self) {
        for &s in &self.list {
            self.flags[s as usize] = false;
        }
        self.list.clear();
    }

    /// Drop list entries whose count is zero.
    pub(crate) fn compact(&mut self, counts: &[u64]) {
        let flags = &mut self.flags;
        self.list.retain(|&s| {
            let keep = counts[s as usize] > 0;
            if !keep {
                flags[s as usize] = false;
            }
            keep
        });
    }

    /// Rebuild from scratch to match `counts` exactly.
    pub(crate) fn rebuild(&mut self, counts: &[u64]) {
        self.list.clear();
        self.flags.fill(false);
        for (s, &c) in counts.iter().enumerate() {
            if c > 0 {
                self.list.push(s as u32);
                self.flags[s] = true;
            }
        }
    }

    /// Restore the occupied list **verbatim**, in the given order, rebuilding
    /// the membership bitmap to match.
    ///
    /// [`Self::rebuild`] orders the list by state index, but the engines'
    /// categorical draws ([`draw_one`], the hypergeometric splits) iterate
    /// the list in *discovery* order — so the list order is part of the
    /// trajectory, and a snapshot restore has to reproduce it exactly rather
    /// than re-derive a sorted one.
    ///
    /// # Errors
    ///
    /// [`SimError::SnapshotCorrupt`] if an entry is out of range for this
    /// occupancy's state space or appears twice.
    pub(crate) fn restore_list(&mut self, list: Vec<u32>) -> Result<(), SimError> {
        self.flags.fill(false);
        let q = self.flags.len();
        for &s in &list {
            let flag = self
                .flags
                .get_mut(s as usize)
                .ok_or_else(|| SimError::SnapshotCorrupt {
                    reason: format!("occupied state {s} outside the state space 0..{q}"),
                })?;
            if *flag {
                return Err(SimError::SnapshotCorrupt {
                    reason: format!("occupied list repeats state {s}"),
                });
            }
            *flag = true;
        }
        self.list = list;
        Ok(())
    }
}

/// The multiset of agents a block has already touched, as a flat per-state
/// accumulator plus the index list of non-zero entries.
///
/// Transitions add into `acc[state]` unconditionally-cheaply; the merge back
/// into the configuration visits exactly the touched states.
#[derive(Debug, Clone)]
pub(crate) struct TouchSet {
    acc: Vec<u64>,
    list: Vec<u32>,
}

impl TouchSet {
    /// An empty touch set over `q` states.
    pub(crate) fn new(q: usize) -> Self {
        TouchSet {
            acc: vec![0; q],
            list: Vec::new(),
        }
    }

    /// Add `k` agents in state `s`.
    #[inline]
    pub(crate) fn add(&mut self, s: usize, k: u64) {
        if self.acc[s] == 0 {
            self.list.push(s as u32);
        }
        self.acc[s] += k;
    }

    /// Remove one uniformly random agent from the touched multiset holding
    /// `total` agents, returning its state.
    pub(crate) fn draw_one(&mut self, rng: &mut SmallRng, total: u64) -> usize {
        draw_one(rng, &mut self.acc, &self.list, total)
    }

    /// Merge the accumulated agents back into `counts`, marking their states
    /// in `occupied`, and reset to empty.
    pub(crate) fn merge_into(&mut self, counts: &mut [u64], occupied: &mut Occupancy) {
        for &s in &self.list {
            let s = s as usize;
            counts[s] += self.acc[s];
            self.acc[s] = 0;
            occupied.mark(s);
        }
        self.list.clear();
    }
}

/// Under `strict-invariants`: assert a configuration holds exactly
/// `expected` agents after a block's deltas are applied.  Catches any
/// draw/merge bookkeeping bug that loses or duplicates an agent, at
/// `O(q)` per block.
#[cfg(feature = "strict-invariants")]
pub(crate) fn assert_mass_conserved(counts: &[u64], expected: u64, context: &str) {
    let total: u64 = counts.iter().sum();
    assert!(
        total == expected,
        "strict-invariants: {context} lost or duplicated agents ({total} != {expected})"
    );
}

/// Remove one uniformly random agent from the multiset `counts` restricted to
/// `list` (with total mass `total`) and return its state.
pub(crate) fn draw_one(rng: &mut SmallRng, counts: &mut [u64], list: &[u32], total: u64) -> usize {
    debug_assert!(total > 0);
    let mut x = rng.gen_range(0..total);
    for &s in list {
        let c = counts[s as usize];
        if x < c {
            counts[s as usize] -= 1;
            return s as usize;
        }
        x -= c;
    }
    unreachable!("categorical draw beyond total mass");
}

/// Pair initiator classes with responder classes uniformly at random — a
/// random contingency table with the given margins — and report each
/// `(initiator_state, responder_state, multiplicity)` cell to `apply`.
///
/// `resp_pairs` holds `total_responders = Σ init multiplicities` responders
/// and is consumed (multiplicities drained to zero).  The scan start advances
/// past exhausted leading responder classes, so the loop cost is `O(q_occ²)`
/// worst case but `O(q_occ)` amortised once early classes drain.
pub(crate) fn pair_classes(
    rng: &mut SmallRng,
    init_pairs: &[(u32, u64)],
    resp_pairs: &mut [(u32, u64)],
    total_responders: u64,
    mut apply: impl FnMut(usize, usize, u64),
) {
    let mut resp_left = total_responders;
    let mut start = 0usize;
    for &(i, di) in init_pairs {
        while start < resp_pairs.len() && resp_pairs[start].1 == 0 {
            start += 1;
        }
        // Invariant: the responder pool still holds exactly `resp_left`
        // agents, of which this initiator class draws `di ≤ resp_left`.
        let mut rem_total = resp_left;
        let mut need = di;
        for pair in resp_pairs[start..].iter_mut() {
            if need == 0 {
                break;
            }
            let (j, rj) = *pair;
            if rj == 0 {
                continue;
            }
            let k = conditional_class_draw(rng, rj, rem_total, need);
            rem_total -= rj;
            if k > 0 {
                pair.1 -= k;
                need -= k;
                apply(i as usize, j as usize, k);
            }
        }
        debug_assert_eq!(need, 0);
        resp_left -= di;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn occupancy_marks_compacts_and_rebuilds() {
        let mut occ = Occupancy::new(5, 2);
        assert_eq!(occ.as_slice(), &[2]);
        occ.mark(4);
        occ.mark(4); // idempotent
        assert_eq!(occ.as_slice(), &[2, 4]);
        let counts = [0u64, 0, 0, 0, 7];
        occ.compact(&counts);
        assert_eq!(occ.as_slice(), &[4]);
        occ.rebuild(&[1, 0, 3, 0, 0]);
        assert_eq!(occ.as_slice(), &[0, 2]);
        occ.mark(0); // still marked after rebuild: no duplicate
        assert_eq!(occ.as_slice(), &[0, 2]);
    }

    #[test]
    fn occupancy_restores_a_verbatim_list_order() {
        let mut occ = Occupancy::new(6, 0);
        occ.restore_list(vec![4, 1, 3]).unwrap();
        assert_eq!(occ.as_slice(), &[4, 1, 3], "discovery order is preserved");
        occ.mark(1); // already present: no duplicate
        assert_eq!(occ.as_slice(), &[4, 1, 3]);
        occ.mark(5);
        assert_eq!(occ.as_slice(), &[4, 1, 3, 5]);

        let mut occ = Occupancy::new(4, 0);
        assert!(occ.restore_list(vec![1, 9]).is_err(), "out of range");
        let mut occ = Occupancy::new(4, 0);
        assert!(occ.restore_list(vec![1, 2, 1]).is_err(), "duplicate");
    }

    #[test]
    fn touch_set_accumulates_and_merges() {
        let mut touched = TouchSet::new(4);
        touched.add(1, 3);
        touched.add(3, 2);
        touched.add(1, 1);
        let mut counts = vec![10u64, 0, 0, 0];
        let mut occ = Occupancy::new(4, 0);
        touched.merge_into(&mut counts, &mut occ);
        assert_eq!(counts, vec![10, 4, 0, 2]);
        assert_eq!(occ.as_slice(), &[0, 1, 3]);
        // Reset: a second merge adds nothing.
        touched.merge_into(&mut counts, &mut occ);
        assert_eq!(counts, vec![10, 4, 0, 2]);
    }

    #[test]
    fn pair_classes_preserves_margins() {
        let mut rng = seeded_rng(11);
        for _ in 0..200 {
            let init = vec![(0u32, 5u64), (2, 3)];
            let mut resp = vec![(1u32, 4u64), (3, 4)];
            let mut row = [0u64; 4];
            let mut col = [0u64; 4];
            pair_classes(&mut rng, &init, &mut resp, 8, |i, j, k| {
                row[i] += k;
                col[j] += k;
            });
            assert_eq!(row, [5, 0, 3, 0]);
            assert_eq!(col, [0, 4, 0, 4]);
            assert!(resp.iter().all(|&(_, r)| r == 0));
        }
    }

    #[test]
    fn pair_classes_margins_are_uniformly_random() {
        // 2×2 table with margins (2, 2) / (2, 2): the (0,0) cell is
        // Hypergeometric(4, 2, 2) with mean 1.
        let mut rng = seeded_rng(13);
        let trials = 20_000;
        let mut sum = 0u64;
        for _ in 0..trials {
            let init = vec![(0u32, 2u64), (1, 2)];
            let mut resp = vec![(0u32, 2u64), (1, 2)];
            let mut cell = 0u64;
            pair_classes(&mut rng, &init, &mut resp, 4, |i, j, k| {
                if i == 0 && j == 0 {
                    cell += k;
                }
            });
            sum += cell;
        }
        let mean = sum as f64 / trials as f64;
        // σ ≈ 0.58, standard error ≈ 0.004: ±0.025 is ~6σ.
        assert!(
            (mean - 1.0).abs() < 0.025,
            "contingency cell mean {mean:.3} too far from 1.0"
        );
    }

    #[test]
    fn delta_table_validates_and_evaluates() {
        struct Swap;
        impl DenseProtocol for Swap {
            type Output = usize;
            fn num_states(&self) -> usize {
                3
            }
            fn initial_state(&self) -> usize {
                0
            }
            fn transition(&self, u: usize, v: usize) -> (usize, usize) {
                (v, u)
            }
            fn output(&self, s: usize) -> usize {
                s
            }
        }
        let delta = DeltaTable::new(&Swap).unwrap();
        assert_eq!(delta.num_states(), 3);
        assert_eq!(delta.eval(&Swap, 1, 2), (2, 1));
    }
}
