//! The hybrid dense ↔ per-agent simulation engine.
//!
//! [`HybridSimulator`] runs a [`DenseProtocol`] on the batched (or sharded)
//! count-based substrate and **migrates to per-agent simulation — and back —
//! when an occupancy monitor detects that the count representation has gone
//! degenerate**.  It generalises the one-shot `CountExact` stage hand-off
//! that PR 3 validated: the refinement stage of that protocol mints `Θ(n)`
//! live states (Lemma 11 of the paper forces per-agent loads of magnitude
//! `≈ 4n`), at which point a counts vector holds mostly 1s and every
//! `O(q_occ²)` block costs more than stepping agents one by one.
//!
//! # The occupancy signal
//!
//! A collision-free block advances `Θ(√n)` interactions for `O(q_occ²)` work
//! (`q_occ` = occupied states), so the dense engine's per-interaction cost is
//! `≈ q_occ²/√n` against the per-agent engine's `O(1)`.  The monitor
//! therefore compares `q_occ²` with `c·√n`:
//!
//! * **dense → per-agent** when `q_occ² > switch_up·√n` holds for `window`
//!   consecutive observations;
//! * **per-agent → dense** when `q_occ² < switch_down·√n` holds for `window`
//!   consecutive observations.
//!
//! `switch_down` sits well below `switch_up` (8 vs 64 by default), so a
//! workload whose occupancy oscillates inside the `[down, up]` band never
//! switches at all, and one that crosses a threshold must *sustain* the
//! crossing for a full window — two independent hysteresis mechanisms that
//! keep oscillating workloads from thrashing (see [`OccupancyMonitor`] for
//! the isolated, property-tested decision rule).
//!
//! # The per-agent stint: decoded structs, not interned indices
//!
//! The per-agent leg is a [`stint`](crate::stint): a `Vec` of **native
//! per-agent structs** stepped with the protocol's monomorphic
//! [`Protocol::interact`](crate::Protocol::interact), obtained through the
//! protocol's [`AgentCodec`](crate::stint::AgentCodec) (the
//! [`DenseProtocol::agent_stint`] hook).  For interned protocols this keeps
//! the state interner **out of the hot loop entirely**: it is consulted only
//! at the migration boundaries — decode each occupied index once on
//! dense → agent, tally + intern once per distinct state on agent → dense —
//! instead of four locked probes per interaction, which cost the PR 4
//! interned stint a measured ~40 % of the `CountExact` refinement leg at
//! `n = 10⁵`.  Protocols without a codec fall back to stepping interned
//! `u32` indices through [`DenseProtocol::transition`]
//! ([`IndexCodec`]); setting
//! [`HybridConfig::interned_stints`] forces that fallback for every
//! protocol, which is the comparison baseline E20 and the bench tooling
//! measure against.  The stint also maintains its occupancy census
//! incrementally, so agent-mode monitor observations are `O(1)` instead of
//! an `O(n log n)` sort of the state vector.
//!
//! # Exactness
//!
//! Migration is the Markov-in-configuration hand-off: the population process
//! is a Markov chain in the *configuration* (the multiset of states), which
//! both representations encode losslessly.  Dense → per-agent expands the
//! counts into a native-state vector (in state-index order); per-agent →
//! dense tallies the vector back into counts.  Only the schedule's
//! randomness source changes at a switch — exactly as it does between the
//! batched and sequential engines in the equivalence suites — so a hybrid
//! run samples the same stochastic process, and trajectories are
//! `(protocol, n, seed)`-deterministic for a fixed engine configuration and
//! driving pattern.
//!
//! # Example
//!
//! ```rust
//! use ppsim::{DenseProtocol, HybridConfig, HybridSimulator};
//!
//! /// One-way epidemic: two states, occupancy never grows — the monitor
//! /// keeps the run dense from start to finish.
//! #[derive(Clone)]
//! struct Rumor;
//! impl DenseProtocol for Rumor {
//!     type Output = bool;
//!     fn num_states(&self) -> usize { 2 }
//!     fn initial_state(&self) -> usize { 0 }
//!     fn transition(&self, u: usize, v: usize) -> (usize, usize) { (u.max(v), v) }
//!     fn output(&self, s: usize) -> bool { s == 1 }
//! }
//!
//! # fn main() -> Result<(), ppsim::SimError> {
//! let mut sim = HybridSimulator::new(Rumor, 50_000, 7)?;
//! sim.transfer(0, 1, 1)?;
//! let outcome = sim.run_until(|s| s.count_of(1) == s.population(), 50_000, u64::MAX >> 1);
//! assert!(outcome.converged());
//! assert_eq!(sim.switches().len(), 0, "a two-state epidemic stays dense");
//! assert!(sim.is_dense());
//! # Ok(())
//! # }
//! ```

use std::time::Instant;

use crate::batched::BatchedSimulator;
use crate::config::ConfigurationStats;
use crate::convergence::RunOutcome;
use crate::dense::DenseProtocol;
use crate::error::SimError;
use crate::rng::derive_seed;
use crate::sharded::{ShardedBatchedSimulator, ShardedConfig};
use crate::snapshot::{Checkpointable, EngineSnapshot, PersistState, ENGINE_HYBRID};
use crate::stint::{BoxedAgentStint, DecodedStint, IndexCodec};

use rand::rngs::SmallRng;

/// Seed-derivation salt for the engine constructed at the `k`-th migration
/// (the initial engine uses the caller's seed verbatim).
const SWITCH_SALT: u64 = 0x48_59_42;

/// Seed-derivation salt for the per-agent stint rebuilt by
/// [`HybridSimulator::set_counts`] in agent mode, mixed with the interaction
/// count at replacement time so repeated replacements get distinct streams
/// while staying a pure function of snapshot-persisted state.
const SETCOUNT_SALT: u64 = 0x53_43_43;

/// Which count-based substrate the hybrid engine's dense mode runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HybridSubstrate {
    /// The single-threaded batched engine ([`BatchedSimulator`]).
    Batched,
    /// The sharded batched engine ([`ShardedBatchedSimulator`]).
    Sharded {
        /// Number of shards (see [`ShardedConfig::shards`]).
        shards: usize,
        /// Worker threads; `0` = available parallelism.
        threads: usize,
    },
}

/// Configuration of the [`HybridSimulator`]'s occupancy monitor and dense
/// substrate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridConfig {
    /// The count-based engine serving dense mode.
    pub substrate: HybridSubstrate,
    /// Migrate dense → per-agent once `q_occ² > switch_up · √n` is sustained.
    /// The default 64 places the switch where a block's `O(q_occ²)` class
    /// work costs ~64 evaluations per interaction advanced — conservatively
    /// past the measured per-agent cost of interned protocols.
    pub switch_up: f64,
    /// Migrate per-agent → dense once `q_occ² < switch_down · √n` is
    /// sustained.  Must be below [`switch_up`](Self::switch_up); the gap is
    /// the hysteresis band.
    pub switch_down: f64,
    /// Consecutive observations a threshold crossing must persist for before
    /// a migration fires.
    pub window: u32,
    /// Interactions between occupancy observations (`None` =
    /// `max(n/4, 256)`).  Both modes observe at this spacing: the dense
    /// engines keep an occupied-state list and the per-agent stint maintains
    /// its census incrementally, so an observation is `O(q_occ)` resp.
    /// `O(1)` in either representation.
    pub monitor_every: Option<u64>,
    /// Run per-agent stints on **interned `u32` indices** through
    /// [`DenseProtocol::transition`] even when the protocol carries an
    /// [`AgentCodec`](crate::stint::AgentCodec) — the PR 4 stepping path,
    /// kept as a measurable baseline for the decoded-vs-interned comparison
    /// (experiment E20, `bench_batched_json --interned-stints`).  Default
    /// `false`: codec-bearing protocols run their stints on native structs.
    pub interned_stints: bool,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            substrate: HybridSubstrate::Batched,
            switch_up: 64.0,
            switch_down: 8.0,
            window: 2,
            monitor_every: None,
            interned_stints: false,
        }
    }
}

/// Which representation the hybrid engine migrated *to*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchDirection {
    /// Counts expanded into a per-agent state vector.
    ToAgent,
    /// Per-agent states tallied back into counts.
    ToDense,
}

/// Per-leg accounting of a hybrid run: how many interactions each
/// representation executed and how long it took, plus which stepping
/// representation the per-agent stints used.  Returned by
/// [`HybridSimulator::legs`] and
/// [`DenseSimulator::hybrid_legs`](crate::DenseSimulator::hybrid_legs); the
/// bench tooling derives its `dense_mips` / `agent_mips` columns from it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridLegs {
    /// Interactions executed on the count-based substrate.
    pub dense_interactions: u64,
    /// Wall-clock seconds spent on the count-based substrate.
    pub dense_seconds: f64,
    /// Interactions executed on per-agent stints.
    pub agent_interactions: u64,
    /// Wall-clock seconds spent on per-agent stints.
    pub agent_seconds: f64,
    /// The most recent stint's stepping representation (`"decoded"` or
    /// `"interned"`); `None` if the run never left dense mode.
    pub stint_kind: Option<&'static str>,
}

impl HybridLegs {
    /// Per-agent-leg throughput in interactions per second (`0.0` when no
    /// stint ran).
    #[must_use]
    pub fn agent_throughput(&self) -> f64 {
        if self.agent_seconds > 0.0 {
            self.agent_interactions as f64 / self.agent_seconds
        } else {
            0.0
        }
    }

    /// Dense-leg throughput in interactions per second (`0.0` when the run
    /// executed no dense leg).
    #[must_use]
    pub fn dense_throughput(&self) -> f64 {
        if self.dense_seconds > 0.0 {
            self.dense_interactions as f64 / self.dense_seconds
        } else {
            0.0
        }
    }
}

/// One recorded representation migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchEvent {
    /// Total interactions executed when the migration happened.
    pub interactions: u64,
    /// The representation migrated to.
    pub direction: SwitchDirection,
    /// Occupied states (`q_occ`) observed at the migration.
    pub occupied: usize,
    /// The protocol's interned-state census at the migration, if it reports
    /// one ([`DenseProtocol::discovered_states`]).
    pub discovered_states: Option<usize>,
}

/// The hysteresis decision rule of the hybrid engine, isolated from the
/// simulators so the no-thrash property can be tested directly: feed it a
/// sequence of occupancy observations and it says when to migrate.
///
/// Invariants (property-tested in this module and in
/// `crates/core/tests/dense_equivalence.rs`):
///
/// * an occupancy sequence that stays inside the `(down, up]` thresholds
///   band never triggers a migration, whatever came before;
/// * a migration requires `window` *consecutive* observations beyond the
///   relevant threshold, so a single outlier observation never switches.
#[derive(Debug, Clone)]
pub struct OccupancyMonitor {
    up_threshold: f64,
    down_threshold: f64,
    window: u32,
    dense: bool,
    streak: u32,
}

impl OccupancyMonitor {
    /// A monitor for population size `n` starting in dense mode.
    ///
    /// # Panics
    ///
    /// Panics if `switch_down >= switch_up` (the hysteresis band would be
    /// empty or inverted) or `window == 0`.
    #[must_use]
    pub fn new(n: u64, switch_up: f64, switch_down: f64, window: u32) -> Self {
        assert!(
            switch_down < switch_up,
            "hysteresis needs switch_down ({switch_down}) < switch_up ({switch_up})"
        );
        assert!(
            window > 0,
            "a zero observation window would switch on noise"
        );
        let sqrt_n = (n as f64).sqrt();
        OccupancyMonitor {
            up_threshold: switch_up * sqrt_n,
            down_threshold: switch_down * sqrt_n,
            window,
            dense: true,
            streak: 0,
        }
    }

    /// Whether the monitor currently believes the run is in dense mode.
    #[must_use]
    pub fn is_dense(&self) -> bool {
        self.dense
    }

    /// Record one occupancy observation; returns the migration to perform
    /// now, if the streak just completed a full window.
    pub fn observe(&mut self, occupied: usize) -> Option<SwitchDirection> {
        let pressure = (occupied as f64) * (occupied as f64);
        let crossing = if self.dense {
            pressure > self.up_threshold
        } else {
            pressure < self.down_threshold
        };
        if !crossing {
            self.streak = 0;
            return None;
        }
        self.streak += 1;
        if self.streak < self.window {
            return None;
        }
        self.streak = 0;
        self.dense = !self.dense;
        Some(if self.dense {
            SwitchDirection::ToDense
        } else {
            SwitchDirection::ToAgent
        })
    }

    /// Discard the in-progress observation streak without touching the mode
    /// belief.  Called at fault injection ([`crate::adversary`]): the
    /// streak's observations describe the pre-fault configuration, so
    /// letting them complete a migration window against the post-fault one
    /// would switch representations on stale evidence.
    pub fn reset_window(&mut self) {
        self.streak = 0;
    }

    /// Whether a single occupancy reading already exceeds the
    /// dense → per-agent threshold.  The windowed [`Self::observe`] protects
    /// against *sampled* noise; a discrete configuration replacement
    /// (`set_counts`, fault injection) is exact evidence, so the hybrid
    /// engine consults this to migrate immediately instead of burning
    /// `O(q_occ²)` blocks until the next scheduled observation.
    #[must_use]
    pub fn over_up_threshold(&self, occupied: usize) -> bool {
        (occupied as f64) * (occupied as f64) > self.up_threshold
    }
}

/// The two representations a hybrid run alternates between.
#[derive(Debug, Clone)]
enum Mode<P: DenseProtocol + Clone + Send> {
    Batched(BatchedSimulator<P>),
    Sharded(ShardedBatchedSimulator<P>),
    Agent(BoxedAgentStint<<P as DenseProtocol>::Output>),
}

/// A dense protocol on the auto-switching hybrid engine: count-based blocks
/// while the occupancy is low, per-agent steps while it is degenerate, exact
/// configuration hand-offs in between (see the module docs).
///
/// Mirrors the driving surface of the other engines (`run`, `run_until`,
/// `transfer`, `output_stats`, seeded construction) and additionally exposes
/// the switch log ([`Self::switches`]) and per-representation interaction
/// counters ([`Self::dense_interactions`], [`Self::agent_interactions`]),
/// which always sum to [`Self::interactions`].
#[derive(Debug, Clone)]
pub struct HybridSimulator<P: DenseProtocol + Clone + Send> {
    protocol: P,
    n: u64,
    seed: u64,
    config: HybridConfig,
    monitor: OccupancyMonitor,
    mode: Mode<P>,
    /// Interactions accumulated by representations already retired; the live
    /// counter is `completed + mode.interactions()`.  Each migration folds
    /// the retiring engine's counter in here exactly once — the partial
    /// block in flight at switch time is never re-counted because engines
    /// only ever run to exact slice boundaries.
    completed: u64,
    dense_total: u64,
    agent_total: u64,
    /// Wall-clock seconds accumulated in each representation (per-leg
    /// throughput accounting for the bench tooling).
    dense_secs: f64,
    agent_secs: f64,
    /// Absolute interaction count of the next occupancy observation.
    next_observation: u64,
    monitor_every: u64,
    switches: Vec<SwitchEvent>,
    /// The stepping representation of the most recent per-agent stint
    /// (`"decoded"` or `"interned"`); `None` before the first migration.
    stint_kind: Option<&'static str>,
    /// The first error a monitor-driven migration hit (see [`Self::fault`]).
    fault: Option<SimError>,
}

impl<P: DenseProtocol + Clone + Send + 'static> HybridSimulator<P> {
    /// Create a hybrid simulator with the default configuration (batched
    /// substrate, `64/8·√n` thresholds, window 2).
    ///
    /// # Errors
    ///
    /// Propagates the substrate constructor's errors
    /// ([`SimError::PopulationTooSmall`], [`SimError::InvalidParameter`]).
    pub fn new(protocol: P, n: usize, seed: u64) -> Result<Self, SimError> {
        Self::with_config(protocol, n, seed, HybridConfig::default())
    }

    /// Create a hybrid simulator with an explicit monitor/substrate
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] if the hysteresis thresholds
    /// are inverted (`switch_down >= switch_up`), `window == 0`, or
    /// `monitor_every == Some(0)`, and propagates the substrate
    /// constructor's errors.
    pub fn with_config(
        protocol: P,
        n: usize,
        seed: u64,
        config: HybridConfig,
    ) -> Result<Self, SimError> {
        if config.switch_down >= config.switch_up {
            return Err(SimError::InvalidParameter {
                name: "switch_down",
                reason: format!(
                    "hysteresis needs switch_down ({}) < switch_up ({})",
                    config.switch_down, config.switch_up
                ),
            });
        }
        if config.window == 0 {
            return Err(SimError::InvalidParameter {
                name: "window",
                reason: "a zero observation window would switch on noise".into(),
            });
        }
        if config.monitor_every == Some(0) {
            return Err(SimError::InvalidParameter {
                name: "monitor_every",
                reason: "a zero monitor interval would probe the occupancy after \
                         every single interaction"
                    .into(),
            });
        }
        let mode = Self::dense_mode(&protocol, n, seed, config.substrate, None)?;
        let monitor_every = config.monitor_every.unwrap_or(((n as u64) / 4).max(256));
        Ok(HybridSimulator {
            monitor: OccupancyMonitor::new(
                n as u64,
                config.switch_up,
                config.switch_down,
                config.window,
            ),
            protocol,
            n: n as u64,
            seed,
            config,
            mode,
            completed: 0,
            dense_total: 0,
            agent_total: 0,
            dense_secs: 0.0,
            agent_secs: 0.0,
            next_observation: monitor_every,
            monitor_every,
            switches: Vec::new(),
            stint_kind: None,
            fault: None,
        })
    }

    /// Construct the configured dense substrate, optionally seeded with an
    /// existing configuration.
    fn dense_mode(
        protocol: &P,
        n: usize,
        seed: u64,
        substrate: HybridSubstrate,
        counts: Option<Vec<u64>>,
    ) -> Result<Mode<P>, SimError> {
        Ok(match substrate {
            HybridSubstrate::Batched => {
                let mut sim = BatchedSimulator::new(protocol.clone(), n, seed)?;
                if let Some(counts) = counts {
                    sim.set_counts(counts)?;
                }
                Mode::Batched(sim)
            }
            HybridSubstrate::Sharded { shards, threads } => {
                let mut sim = ShardedBatchedSimulator::new(
                    protocol.clone(),
                    n,
                    seed,
                    ShardedConfig {
                        shards,
                        threads,
                        epoch_interactions: None,
                    },
                )?;
                if let Some(counts) = counts {
                    sim.set_counts(counts)?;
                }
                Mode::Sharded(sim)
            }
        })
    }

    /// The population size `n`.
    #[must_use]
    pub fn population(&self) -> u64 {
        self.n
    }

    /// The protocol being executed.
    #[must_use]
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The number of states `q` of the protocol (the index-space capacity
    /// for interned protocols).
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.protocol.num_states()
    }

    /// The number of interactions executed so far, across both
    /// representations.
    #[must_use]
    pub fn interactions(&self) -> u64 {
        self.completed + self.mode_interactions()
    }

    /// Interactions executed on the count-based substrate so far.
    #[must_use]
    pub fn dense_interactions(&self) -> u64 {
        self.dense_total
            + match &self.mode {
                Mode::Batched(_) | Mode::Sharded(_) => self.mode_interactions(),
                Mode::Agent(_) => 0,
            }
    }

    /// Interactions executed on the per-agent engine so far.
    #[must_use]
    pub fn agent_interactions(&self) -> u64 {
        self.agent_total
            + match &self.mode {
                Mode::Agent(_) => self.mode_interactions(),
                Mode::Batched(_) | Mode::Sharded(_) => 0,
            }
    }

    fn mode_interactions(&self) -> u64 {
        match &self.mode {
            Mode::Batched(s) => s.interactions(),
            Mode::Sharded(s) => s.interactions(),
            Mode::Agent(s) => s.interactions(),
        }
    }

    /// Wall-clock seconds this simulator has spent executing on the
    /// count-based substrate (per-leg throughput accounting).
    #[must_use]
    pub fn dense_seconds(&self) -> f64 {
        self.dense_secs
    }

    /// Wall-clock seconds this simulator has spent executing per-agent
    /// stints.
    #[must_use]
    pub fn agent_seconds(&self) -> f64 {
        self.agent_secs
    }

    /// The per-leg accounting in one struct (interaction counts, wall-clock
    /// seconds and the stint kind — see [`HybridLegs`]).
    #[must_use]
    pub fn legs(&self) -> HybridLegs {
        HybridLegs {
            dense_interactions: self.dense_interactions(),
            dense_seconds: self.dense_secs,
            agent_interactions: self.agent_interactions(),
            agent_seconds: self.agent_secs,
            stint_kind: self.stint_kind,
        }
    }

    /// Whether the run is currently on the count-based substrate.
    #[must_use]
    pub fn is_dense(&self) -> bool {
        !matches!(self.mode, Mode::Agent(_))
    }

    /// The stepping representation of the most recent per-agent stint
    /// (`"decoded"` for native-struct stints, `"interned"` for the `u32`
    /// index fallback), or `None` if the run has never left dense mode.
    #[must_use]
    pub fn stint_kind(&self) -> Option<&'static str> {
        self.stint_kind
    }

    /// The representation migrations performed so far, in order.
    #[must_use]
    pub fn switches(&self) -> &[SwitchEvent] {
        &self.switches
    }

    /// The number of currently occupied states `q_occ` (distinct states
    /// holding ≥ 1 agent) — the monitor's signal.  `O(q_occ)` in dense mode;
    /// `O(1)` in per-agent mode, where the stint maintains its census
    /// incrementally (exact up to 64-bit state-hash collisions, which can
    /// only undercount by `~q_occ²/2⁶⁴`).
    #[must_use]
    pub fn occupied_states(&self) -> usize {
        match &self.mode {
            Mode::Batched(s) => s.occupied_states(),
            Mode::Sharded(s) => s.occupied_states(),
            Mode::Agent(s) => s.occupied_states(),
        }
    }

    /// Borrow the counts vector while the run is on the count-based
    /// substrate (`None` in per-agent mode).  Convergence predicates use
    /// this to inspect the dense configuration without the `O(q)` copy of
    /// [`Self::counts`].
    #[must_use]
    pub fn as_dense_counts(&self) -> Option<&[u64]> {
        match &self.mode {
            Mode::Batched(s) => Some(s.counts()),
            Mode::Sharded(s) => Some(s.counts()),
            Mode::Agent(_) => None,
        }
    }

    /// The current configuration as state counts (owned; in per-agent mode
    /// the stint tallies its native states back through the codec, interning
    /// any state minted since the stint began).
    #[must_use]
    pub fn counts(&self) -> Vec<u64> {
        match &self.mode {
            Mode::Batched(s) => s.counts().to_vec(),
            Mode::Sharded(s) => s.counts().to_vec(),
            Mode::Agent(s) => s.counts(),
        }
    }

    /// Number of agents currently in state `state`.
    #[must_use]
    pub fn count_of(&self, state: usize) -> u64 {
        match &self.mode {
            Mode::Batched(s) => s.count_of(state),
            Mode::Sharded(s) => s.count_of(state),
            Mode::Agent(s) => s.count_of(state),
        }
    }

    /// Output histogram of the current configuration.
    #[must_use]
    pub fn output_stats(&self) -> ConfigurationStats<P::Output> {
        match &self.mode {
            Mode::Batched(s) => s.output_stats(),
            Mode::Sharded(s) => s.output_stats(),
            Mode::Agent(s) => s.output_stats(),
        }
    }

    /// Move `k` agents from state `from` to state `to` (experiment setup).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] if either state is out of
    /// range or fewer than `k` agents are in `from`.
    pub fn transfer(&mut self, from: usize, to: usize, k: u64) -> Result<(), SimError> {
        match &mut self.mode {
            Mode::Batched(s) => s.transfer(from, to, k),
            Mode::Sharded(s) => s.transfer(from, to, k),
            Mode::Agent(s) => s.transfer(from, to, k),
        }
    }

    /// Replace the whole configuration.  In dense mode this delegates to the
    /// substrate; in per-agent mode the running stint is retired (its
    /// interaction count folded into the per-leg totals, exactly like a
    /// migration) and a fresh stint is expanded from `counts`, seeded as a
    /// pure function of snapshot-persisted state so a restored run replaces
    /// identically.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] if `counts` has the wrong
    /// length or does not sum to the population size.
    pub fn set_counts(&mut self, counts: Vec<u64>) -> Result<(), SimError> {
        match &mut self.mode {
            Mode::Batched(s) => s.set_counts(counts)?,
            Mode::Sharded(s) => s.set_counts(counts)?,
            Mode::Agent(_) => {
                let q = self.protocol.num_states();
                if counts.len() != q {
                    return Err(SimError::InvalidParameter {
                        name: "counts",
                        reason: format!("expected {q} state counts, got {}", counts.len()),
                    });
                }
                let total: u64 = counts.iter().sum();
                if total != self.n {
                    return Err(SimError::InvalidParameter {
                        name: "counts",
                        reason: format!("counts sum to {total}, the population is {}", self.n),
                    });
                }
                let stint_seed = derive_seed(self.seed, SETCOUNT_SALT + self.interactions());
                let stint = if self.config.interned_stints {
                    None
                } else {
                    self.protocol.agent_stint(&counts, stint_seed)
                };
                let stint = stint.unwrap_or_else(|| {
                    DecodedStint::boxed(IndexCodec(self.protocol.clone()), &counts, stint_seed)
                });
                let executed = self.mode_interactions();
                self.completed += executed;
                self.agent_total += executed;
                self.stint_kind = Some(stint.kind());
                self.mode = Mode::Agent(stint);
                self.monitor.reset_window();
                return Ok(());
            }
        }
        // A replacement is a discrete event: discard the monitor's stale
        // streak and, if the new configuration is already degenerate, leave
        // the dense representation right away (see
        // `flee_degenerate_configuration`).
        self.monitor.reset_window();
        self.flee_degenerate_configuration();
        Ok(())
    }

    /// Migrate dense → per-agent immediately when the live configuration's
    /// occupancy already exceeds the monitor's switch-up threshold.
    ///
    /// The windowed monitor protects against sampled noise, but a discrete
    /// configuration replacement ([`Self::set_counts`], [`Self::corrupt`] —
    /// in particular an adversarial initialization at `n ≥ 10⁵`, which
    /// occupies `Θ(n)` of the `Θ(n)` states) is exact evidence; waiting
    /// `monitor_every = max(n/4, 256)` interactions for the next scheduled
    /// observation would cost `O(q_occ²)` per `Θ(√n)`-interaction block in
    /// the meantime — an effective hang, not a slowdown.  A migration
    /// failure parks in [`Self::fault`], exactly like a monitor-driven one.
    fn flee_degenerate_configuration(&mut self) {
        if !self.is_dense() {
            return;
        }
        let occupied = self.occupied_states();
        if !self.monitor.over_up_threshold(occupied) {
            return;
        }
        if let Err(e) = self.migrate(SwitchDirection::ToAgent, occupied) {
            if self.fault.is_none() {
                self.fault = Some(e);
            }
        }
    }

    /// Corrupt `k` agents chosen uniformly without replacement, in whichever
    /// representation is live: count mass moves on the dense substrate,
    /// native structs are overwritten through the codec in per-agent mode
    /// (see [`crate::adversary`]).  The monitor's in-progress streak is
    /// discarded either way — its observations describe the pre-fault
    /// configuration — and a fault that leaves the dense occupancy past the
    /// switch-up threshold migrates to per-agent mode immediately (exact
    /// evidence needs no observation window).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] if `k` exceeds the population
    /// or `new_state` returns a state outside the assigned state space.
    pub fn corrupt(
        &mut self,
        k: u64,
        rng: &mut SmallRng,
        new_state: &mut dyn FnMut(usize, &mut SmallRng) -> usize,
    ) -> Result<(), SimError> {
        let result = match &mut self.mode {
            Mode::Batched(s) => s.corrupt(k, rng, new_state),
            Mode::Sharded(s) => s.corrupt(k, rng, new_state),
            Mode::Agent(s) => s.corrupt(k, rng, new_state),
        };
        self.monitor.reset_window();
        if result.is_ok() {
            self.flee_degenerate_configuration();
        }
        result
    }

    /// Discard the occupancy monitor's in-progress observation streak
    /// ([`OccupancyMonitor::reset_window`]) — restart-safe probing after a
    /// fault event.
    pub fn reset_monitor(&mut self) {
        self.monitor.reset_window();
    }

    /// Migrate to the per-agent representation now, regardless of the
    /// monitor (no-op when already per-agent).  Exposed for the round-trip
    /// tests and for experiments that want to pin the switch point; the
    /// monitor keeps running afterwards and may migrate back.
    ///
    /// # Errors
    ///
    /// Propagates the migration's [`SimError`]; the simulator keeps running
    /// in its current representation when that happens.
    pub fn switch_to_agent(&mut self) -> Result<(), SimError> {
        if !self.is_dense() {
            return Ok(());
        }
        let occupied = self.occupied_states();
        self.migrate(SwitchDirection::ToAgent, occupied)
    }

    /// Migrate to the count-based representation now, regardless of the
    /// monitor (no-op when already dense).
    ///
    /// # Errors
    ///
    /// Propagates the migration's [`SimError`] (e.g. a substrate
    /// reconstruction failure); the simulator keeps running per-agent when
    /// that happens.
    pub fn switch_to_dense(&mut self) -> Result<(), SimError> {
        if self.is_dense() {
            return Ok(());
        }
        let occupied = self.occupied_states();
        self.migrate(SwitchDirection::ToDense, occupied)
    }

    /// Perform one migration: build the successor engine, then fold the
    /// retiring engine's interaction counter into the phase totals exactly
    /// once, transfer the configuration, and record the event.  The
    /// monitor's mode flag is forced to match (manual switches bypass its
    /// streak logic).
    ///
    /// Construction happens *before* any accounting mutates, so a failed
    /// migration leaves the simulator exactly as it was — still consistent,
    /// still runnable in its current representation.
    fn migrate(&mut self, direction: SwitchDirection, occupied: usize) -> Result<(), SimError> {
        let switch_seed = derive_seed(self.seed, SWITCH_SALT + 1 + self.switches.len() as u64);
        let successor = match direction {
            SwitchDirection::ToAgent => {
                let counts = self.counts();
                // Decoded stint if the protocol carries a codec (unless the
                // configuration pins the interned baseline); otherwise step
                // interned u32 indices through `transition` as PR 4 did.
                // Either stint expands in state-index order: a fixed,
                // representation-independent layout, so the hand-off is a
                // pure function of the configuration.
                let stint = if self.config.interned_stints {
                    None
                } else {
                    self.protocol.agent_stint(&counts, switch_seed)
                };
                let stint = stint.unwrap_or_else(|| {
                    DecodedStint::boxed(IndexCodec(self.protocol.clone()), &counts, switch_seed)
                });
                debug_assert_eq!(
                    stint.population() as u64,
                    self.n,
                    "the expansion must cover the population"
                );
                Mode::Agent(stint)
            }
            SwitchDirection::ToDense => {
                let counts = self.counts();
                Self::dense_mode(
                    &self.protocol,
                    self.n as usize,
                    switch_seed,
                    self.config.substrate,
                    Some(counts),
                )?
            }
        };
        let executed = self.mode_interactions();
        self.completed += executed;
        match &self.mode {
            Mode::Batched(_) | Mode::Sharded(_) => self.dense_total += executed,
            Mode::Agent(_) => self.agent_total += executed,
        }
        if let Mode::Agent(stint) = &successor {
            self.stint_kind = Some(stint.kind());
        }
        self.mode = successor;
        self.monitor.dense = matches!(direction, SwitchDirection::ToDense);
        self.monitor.streak = 0;
        self.switches.push(SwitchEvent {
            interactions: self.interactions(),
            direction,
            occupied,
            discovered_states: self.protocol.discovered_states(),
        });
        Ok(())
    }

    /// The first error a *monitor-driven* migration hit, if any.
    ///
    /// [`Self::run`] promises to execute its exact budget, so an automatic
    /// migration that fails mid-run cannot propagate an error without
    /// breaking that contract.  Instead the engine stays in its current
    /// (still consistent) representation, keeps executing, and parks the
    /// error here for the driver to inspect.  Manual switches
    /// ([`Self::switch_to_agent`], [`Self::switch_to_dense`]) and snapshot
    /// restores return their errors directly and never set this.
    #[must_use]
    pub fn fault(&self) -> Option<&SimError> {
        self.fault.as_ref()
    }

    /// One monitor observation at the current interaction count; schedules
    /// the next one.  Since the per-agent stint's census is maintained
    /// incrementally (`O(1)` to read), both modes observe at the same
    /// cadence.
    fn observe(&mut self) {
        let occupied = self.occupied_states();
        if let Some(direction) = self.monitor.observe(occupied) {
            if let Err(e) = self.migrate(direction, occupied) {
                // The monitor already flipped its mode flag when it asked for
                // the migration; snap it back to the representation we are
                // actually still in and park the error (see `fault`).
                self.monitor.dense = self.is_dense();
                self.monitor.streak = 0;
                if self.fault.is_none() {
                    self.fault = Some(e);
                }
            }
        }
        self.next_observation = self.interactions() + self.monitor_every;
    }

    /// Execute `budget` further interactions unconditionally, observing the
    /// occupancy (and possibly migrating) at the configured cadence.
    pub fn run(&mut self, budget: u64) {
        let target = self.interactions() + budget;
        while self.interactions() < target {
            let slice = (target - self.interactions())
                .min(self.next_observation.saturating_sub(self.interactions()))
                .max(1);
            let started = Instant::now();
            let dense_leg = match &mut self.mode {
                Mode::Batched(s) => {
                    s.run(slice);
                    true
                }
                Mode::Sharded(s) => {
                    s.run(slice);
                    true
                }
                Mode::Agent(s) => {
                    s.run(slice);
                    false
                }
            };
            let elapsed = started.elapsed().as_secs_f64();
            if dense_leg {
                self.dense_secs += elapsed;
            } else {
                self.agent_secs += elapsed;
            }
            if self.interactions() >= self.next_observation {
                self.observe();
            }
        }
    }

    /// Run until `pred` holds (checked every `check_every` interactions, and
    /// once before the first step) or until `max_interactions` *total*
    /// interactions have been executed — the shared `run_until` contract of
    /// the engines.
    pub fn run_until<F>(
        &mut self,
        mut pred: F,
        check_every: u64,
        max_interactions: u64,
    ) -> RunOutcome
    where
        F: FnMut(&Self) -> bool,
    {
        let check_every = check_every.max(1);
        if pred(self) {
            return RunOutcome::Converged {
                interactions: self.interactions(),
            };
        }
        while self.interactions() < max_interactions {
            let chunk = check_every.min(max_interactions - self.interactions());
            self.run(chunk);
            if pred(self) {
                return RunOutcome::Converged {
                    interactions: self.interactions(),
                };
            }
        }
        RunOutcome::Exhausted {
            interactions: self.interactions(),
            budget: max_interactions,
        }
    }

    /// Consume the simulator and return the final configuration counts.
    #[must_use]
    pub fn into_counts(self) -> Vec<u64> {
        match self.mode {
            Mode::Batched(s) => s.into_counts(),
            Mode::Sharded(s) => s.into_counts(),
            Mode::Agent(_) => self.counts(),
        }
    }
}

/// Stint-kind tags in hybrid snapshots.
const STINT_NONE: u8 = 0;
const STINT_DECODED: u8 = 1;
const STINT_INTERNED: u8 = 2;

/// Mode tags in hybrid snapshots.
const MODE_DENSE: u8 = 0;
const MODE_AGENT: u8 = 1;

fn stint_kind_tag(kind: Option<&'static str>) -> u8 {
    match kind {
        None => STINT_NONE,
        Some("decoded") => STINT_DECODED,
        _ => STINT_INTERNED,
    }
}

fn stint_kind_from_tag(tag: u8) -> Result<Option<&'static str>, SimError> {
    match tag {
        STINT_NONE => Ok(None),
        STINT_DECODED => Ok(Some("decoded")),
        STINT_INTERNED => Ok(Some("interned")),
        other => Err(SimError::SnapshotCorrupt {
            reason: format!("unknown stint-kind tag {other}"),
        }),
    }
}

/// Checkpointing for the hybrid engine.
///
/// Payload layout (engine tag
/// [`ENGINE_HYBRID`]):
///
/// ```text
/// u64            population n
/// u64            seed (drives future switch-seed derivation)
/// u8             substrate tag (0 batched, 1 sharded) [+ u64 shards, u64 threads]
/// f64 × 2        switch_up, switch_down
/// u32            window
/// u64            resolved monitor_every
/// bool           interned_stints
/// u64 × 4        completed, dense_total, agent_total, next_observation
/// bool, u32      monitor mode flag, monitor streak
/// switch log     count + (interactions, direction, occupied, discovered?) each
/// u8             stint-kind tag (0 none / 1 decoded / 2 interned)
/// Vec<u8>        protocol state (interner contents for dynamic protocols)
/// u8 + Vec<u8>   mode tag (0 dense / 1 agent) + inner engine/stint bytes
/// ```
///
/// Wall-clock accounting (`dense_seconds`, `agent_seconds`) is deliberately
/// **not** persisted — it is the one piece of state that is not a pure
/// function of the trajectory — and is zeroed on restore.  That exclusion is
/// what makes snapshot-byte equality a valid trajectory-equality check (the
/// fault-injection harness relies on it).
///
/// Configuration fields that shape the trajectory (population, substrate,
/// thresholds, window, monitor cadence, stint representation) are validated
/// against the restore target; the thread budget is not (it never shapes
/// the trajectory).
impl<P: DenseProtocol + Clone + Send + 'static> Checkpointable for HybridSimulator<P> {
    fn save_state(&self) -> EngineSnapshot {
        let mut payload = Vec::new();
        self.n.persist(&mut payload);
        self.seed.persist(&mut payload);
        match self.config.substrate {
            HybridSubstrate::Batched => 0u8.persist(&mut payload),
            HybridSubstrate::Sharded { shards, threads } => {
                1u8.persist(&mut payload);
                shards.persist(&mut payload);
                threads.persist(&mut payload);
            }
        }
        self.config.switch_up.persist(&mut payload);
        self.config.switch_down.persist(&mut payload);
        self.config.window.persist(&mut payload);
        self.monitor_every.persist(&mut payload);
        self.config.interned_stints.persist(&mut payload);
        self.completed.persist(&mut payload);
        self.dense_total.persist(&mut payload);
        self.agent_total.persist(&mut payload);
        self.next_observation.persist(&mut payload);
        self.monitor.dense.persist(&mut payload);
        self.monitor.streak.persist(&mut payload);
        self.switches.len().persist(&mut payload);
        for e in &self.switches {
            e.interactions.persist(&mut payload);
            match e.direction {
                SwitchDirection::ToAgent => 0u8.persist(&mut payload),
                SwitchDirection::ToDense => 1u8.persist(&mut payload),
            }
            e.occupied.persist(&mut payload);
            e.discovered_states.persist(&mut payload);
        }
        stint_kind_tag(self.stint_kind).persist(&mut payload);
        self.protocol.save_protocol_state().persist(&mut payload);
        match &self.mode {
            Mode::Batched(s) => {
                MODE_DENSE.persist(&mut payload);
                s.save_state().payload().to_vec().persist(&mut payload);
            }
            Mode::Sharded(s) => {
                MODE_DENSE.persist(&mut payload);
                s.save_state().payload().to_vec().persist(&mut payload);
            }
            Mode::Agent(s) => {
                MODE_AGENT.persist(&mut payload);
                let mut stint = Vec::new();
                s.save_stint(&mut stint);
                stint.persist(&mut payload);
            }
        }
        EngineSnapshot::new(ENGINE_HYBRID, payload)
    }

    fn restore_state(&mut self, snapshot: &EngineSnapshot) -> Result<(), SimError> {
        snapshot.expect_engine(ENGINE_HYBRID, "the hybrid engine")?;
        let mut r = snapshot.reader();
        let n = r.read::<u64>()?;
        let seed = r.read::<u64>()?;
        let substrate_tag = r.read::<u8>()?;
        let substrate = match substrate_tag {
            0 => HybridSubstrate::Batched,
            1 => HybridSubstrate::Sharded {
                shards: r.read::<usize>()?,
                threads: r.read::<usize>()?,
            },
            other => {
                return Err(SimError::SnapshotCorrupt {
                    reason: format!("unknown hybrid substrate tag {other}"),
                })
            }
        };
        let switch_up = r.read::<f64>()?;
        let switch_down = r.read::<f64>()?;
        let window = r.read::<u32>()?;
        let monitor_every = r.read::<u64>()?;
        let interned_stints = r.read::<bool>()?;
        let completed = r.read::<u64>()?;
        let dense_total = r.read::<u64>()?;
        let agent_total = r.read::<u64>()?;
        let next_observation = r.read::<u64>()?;
        let monitor_dense = r.read::<bool>()?;
        let monitor_streak = r.read::<u32>()?;
        let num_switches = r.read::<usize>()?;
        let mut switches = Vec::with_capacity(num_switches.min(1024));
        for _ in 0..num_switches {
            let interactions = r.read::<u64>()?;
            let direction = match r.read::<u8>()? {
                0 => SwitchDirection::ToAgent,
                1 => SwitchDirection::ToDense,
                other => {
                    return Err(SimError::SnapshotCorrupt {
                        reason: format!("unknown switch-direction tag {other}"),
                    })
                }
            };
            let occupied = r.read::<usize>()?;
            let discovered_states = r.read::<Option<usize>>()?;
            switches.push(SwitchEvent {
                interactions,
                direction,
                occupied,
                discovered_states,
            });
        }
        let stint_kind = stint_kind_from_tag(r.read::<u8>()?)?;
        let protocol_bytes = r.read::<Vec<u8>>()?;
        let mode_tag = r.read::<u8>()?;
        let mode_bytes = r.read::<Vec<u8>>()?;
        r.finish()?;

        if n != self.n {
            return Err(SimError::SnapshotMismatch {
                reason: format!("snapshot population {n} != simulator population {}", self.n),
            });
        }
        let config_matches = match (substrate, self.config.substrate) {
            (HybridSubstrate::Batched, HybridSubstrate::Batched) => true,
            // The shard partition shapes the trajectory; the thread budget
            // does not.
            (
                HybridSubstrate::Sharded { shards: a, .. },
                HybridSubstrate::Sharded { shards: b, .. },
            ) => a == b,
            _ => false,
        } && switch_up.to_bits() == self.config.switch_up.to_bits()
            && switch_down.to_bits() == self.config.switch_down.to_bits()
            && window == self.config.window
            && monitor_every == self.monitor_every
            && interned_stints == self.config.interned_stints;
        if !config_matches {
            return Err(SimError::SnapshotMismatch {
                reason: format!(
                    "snapshot was taken under a different hybrid configuration \
                     (substrate/thresholds/window/cadence/stint representation): \
                     snapshot ({substrate:?}, {switch_up}/{switch_down}, window {window}, \
                     every {monitor_every}, interned {interned_stints}) vs simulator \
                     ({:?}, {}/{}, window {}, every {}, interned {})",
                    self.config.substrate,
                    self.config.switch_up,
                    self.config.switch_down,
                    self.config.window,
                    self.monitor_every,
                    self.config.interned_stints
                ),
            });
        }

        // Protocol state before any engine construction: rebuilt δ-tables and
        // restored stints must see the checkpoint's interner contents.
        self.protocol.restore_protocol_state(&protocol_bytes)?;
        let mode = match mode_tag {
            MODE_DENSE => {
                let inner = EngineSnapshot::new(
                    match self.config.substrate {
                        HybridSubstrate::Batched => crate::snapshot::ENGINE_BATCHED,
                        HybridSubstrate::Sharded { .. } => crate::snapshot::ENGINE_SHARDED,
                    },
                    mode_bytes,
                );
                let mut mode = Self::dense_mode(
                    &self.protocol,
                    self.n as usize,
                    seed,
                    self.config.substrate,
                    None,
                )?;
                match &mut mode {
                    Mode::Batched(s) => s.restore_state(&inner)?,
                    Mode::Sharded(s) => s.restore_state(&inner)?,
                    Mode::Agent(_) => unreachable!("dense_mode never builds a stint"),
                }
                mode
            }
            MODE_AGENT => {
                let stint = match stint_kind {
                    Some("interned") => {
                        DecodedStint::restore_boxed(IndexCodec(self.protocol.clone()), &mode_bytes)?
                    }
                    Some("decoded") => match self.protocol.restore_agent_stint(&mode_bytes) {
                        Some(stint) => stint?,
                        None => {
                            return Err(SimError::SnapshotMismatch {
                                reason: format!(
                                    "snapshot holds a decoded per-agent stint but protocol \
                                     `{}` does not implement restore_agent_stint",
                                    self.protocol.name()
                                ),
                            })
                        }
                    },
                    _ => {
                        return Err(SimError::SnapshotCorrupt {
                            reason: "snapshot is in per-agent mode but records no stint kind"
                                .into(),
                        })
                    }
                };
                Mode::Agent(stint)
            }
            other => {
                return Err(SimError::SnapshotCorrupt {
                    reason: format!("unknown hybrid mode tag {other}"),
                })
            }
        };

        self.seed = seed;
        self.mode = mode;
        self.completed = completed;
        self.dense_total = dense_total;
        self.agent_total = agent_total;
        // Wall-clock is not part of the trajectory and was not persisted.
        self.dense_secs = 0.0;
        self.agent_secs = 0.0;
        self.next_observation = next_observation;
        self.monitor.dense = monitor_dense;
        self.monitor.streak = monitor_streak;
        self.switches = switches;
        self.stint_kind = stint_kind;
        self.fault = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// One-way epidemic on two dense states: occupancy never exceeds 2.
    #[derive(Debug, Clone, Copy)]
    struct Rumor;
    impl DenseProtocol for Rumor {
        type Output = bool;
        fn num_states(&self) -> usize {
            2
        }
        fn initial_state(&self) -> usize {
            0
        }
        fn transition(&self, u: usize, v: usize) -> (usize, usize) {
            (u.max(v), v)
        }
        fn output(&self, s: usize) -> bool {
            s == 1
        }
    }

    /// A state-minting protocol: the initiator walks to a fresh state on
    /// (almost) every interaction, scattering the population over `Θ(n)`
    /// distinct states — the degenerate regime the hybrid engine exists for.
    #[derive(Debug, Clone, Copy)]
    struct Scatter {
        q: usize,
    }
    impl DenseProtocol for Scatter {
        type Output = usize;
        fn num_states(&self) -> usize {
            self.q
        }
        fn initial_state(&self) -> usize {
            0
        }
        fn transition(&self, u: usize, v: usize) -> (usize, usize) {
            (((u + v + 1) * 2) % self.q, v)
        }
        fn output(&self, s: usize) -> usize {
            s
        }
    }

    #[test]
    fn narrow_workload_never_leaves_dense_mode() {
        let mut sim = HybridSimulator::new(Rumor, 20_000, 3).unwrap();
        sim.transfer(0, 1, 1).unwrap();
        let outcome = sim.run_until(|s| s.count_of(1) == 20_000, 20_000, u64::MAX >> 1);
        assert!(outcome.converged());
        assert!(sim.is_dense());
        assert!(sim.switches().is_empty());
        assert_eq!(sim.agent_interactions(), 0);
        assert_eq!(sim.dense_interactions(), sim.interactions());
    }

    #[test]
    fn scattering_workload_migrates_to_per_agent() {
        let n = 4_000usize;
        let mut sim = HybridSimulator::new(Scatter { q: 1 << 14 }, n, 9).unwrap();
        sim.run(20 * n as u64);
        assert!(
            sim.switches()
                .iter()
                .any(|e| e.direction == SwitchDirection::ToAgent),
            "Θ(n) occupancy must trigger the dense → per-agent migration \
             (switches: {:?})",
            sim.switches()
        );
        assert!(sim.agent_interactions() > 0);
        assert_eq!(
            sim.dense_interactions() + sim.agent_interactions(),
            sim.interactions(),
            "phase counters must partition the total"
        );
    }

    #[test]
    fn run_executes_exactly_the_budget_across_migrations() {
        let n = 3_000usize;
        let mut sim = HybridSimulator::new(Scatter { q: 1 << 14 }, n, 5).unwrap();
        for chunk in [1_234u64, 17, 50_000, 1, 99_999] {
            let before = sim.interactions();
            sim.run(chunk);
            assert_eq!(sim.interactions(), before + chunk);
        }
        assert_eq!(
            sim.dense_interactions() + sim.agent_interactions(),
            sim.interactions()
        );
    }

    #[test]
    fn migration_round_trip_preserves_the_configuration_exactly() {
        let n = 5_000usize;
        let mut sim = HybridSimulator::new(Scatter { q: 1 << 13 }, n, 21).unwrap();
        sim.run(10_000);
        let before = sim.counts();
        let interactions = sim.interactions();
        sim.switch_to_agent().unwrap();
        assert!(!sim.is_dense());
        assert_eq!(sim.counts(), before, "dense → agent must be lossless");
        assert_eq!(sim.interactions(), interactions);
        sim.switch_to_dense().unwrap();
        assert!(sim.is_dense());
        assert_eq!(sim.counts(), before, "agent → dense must be lossless");
        assert_eq!(sim.interactions(), interactions);
        assert_eq!(sim.switches().len(), 2);
        // Manual switches are no-ops when already in the target mode.
        sim.switch_to_dense().unwrap();
        assert_eq!(sim.switches().len(), 2);
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        let run = || {
            let mut sim = HybridSimulator::new(Scatter { q: 1 << 14 }, 2_500, 77).unwrap();
            sim.run(60_000);
            (sim.counts(), sim.interactions(), sim.switches().to_vec())
        };
        let (ca, ia, sa) = run();
        let (cb, ib, sb) = run();
        assert_eq!(ca, cb);
        assert_eq!(ia, ib);
        assert_eq!(sa, sb, "switch points are seed-deterministic");
    }

    #[test]
    fn sharded_substrate_drives_the_same_process() {
        let config = HybridConfig {
            substrate: HybridSubstrate::Sharded {
                shards: 2,
                threads: 1,
            },
            ..HybridConfig::default()
        };
        let mut sim = HybridSimulator::with_config(Rumor, 10_000, 11, config).unwrap();
        sim.transfer(0, 1, 1).unwrap();
        let outcome = sim.run_until(|s| s.count_of(1) == 10_000, 10_000, u64::MAX >> 1);
        assert!(outcome.converged());
        assert!(sim.switches().is_empty());
    }

    #[test]
    fn invalid_hysteresis_is_rejected() {
        let inverted = HybridConfig {
            switch_up: 4.0,
            switch_down: 8.0,
            ..HybridConfig::default()
        };
        assert!(HybridSimulator::with_config(Rumor, 100, 0, inverted).is_err());
        let zero_window = HybridConfig {
            window: 0,
            ..HybridConfig::default()
        };
        assert!(HybridSimulator::with_config(Rumor, 100, 0, zero_window).is_err());
        let zero_monitor = HybridConfig {
            monitor_every: Some(0),
            ..HybridConfig::default()
        };
        assert!(HybridSimulator::with_config(Rumor, 100, 0, zero_monitor).is_err());
    }

    #[test]
    fn exhaustion_reports_actual_interactions() {
        let mut sim = HybridSimulator::new(Rumor, 1_000, 1).unwrap();
        let outcome = sim.run_until(|_| false, 7, 100);
        assert_eq!(
            outcome,
            RunOutcome::Exhausted {
                interactions: 100,
                budget: 100
            }
        );
        assert_eq!(sim.interactions(), 100);
    }

    #[test]
    fn snapshot_round_trip_replays_bit_identically_across_a_migration() {
        // Scatter migrates dense → per-agent mid-run; cut the run at chunk
        // boundaries on both sides of the switch and check each resume
        // replays bit-identically against the uninterrupted reference.
        let n = 3_000usize;
        let chunks = [1_009u64, 40_013, 25_057];
        let mut reference = HybridSimulator::new(Scatter { q: 1 << 14 }, n, 5).unwrap();
        for &c in &chunks {
            reference.run(c);
        }
        assert!(
            reference
                .switches()
                .iter()
                .any(|e| e.direction == SwitchDirection::ToAgent),
            "the workload must migrate for this test to bite"
        );
        let reference_bytes = reference.save_state().to_bytes();

        for cut in 1..chunks.len() {
            let mut victim = HybridSimulator::new(Scatter { q: 1 << 14 }, n, 5).unwrap();
            for &c in &chunks[..cut] {
                victim.run(c);
            }
            if cut == 2 {
                assert!(!victim.is_dense(), "the second cut should land mid-stint");
            }
            let bytes = victim.save_state().to_bytes();
            drop(victim);

            // A fresh simulator with a different seed: restore must overwrite
            // every trajectory-relevant field, including the seed that drives
            // future switch-seed derivation.
            let mut resumed = HybridSimulator::new(Scatter { q: 1 << 14 }, n, 999).unwrap();
            resumed.run(137);
            let snap = EngineSnapshot::from_bytes(&bytes).unwrap();
            resumed.restore_state(&snap).unwrap();
            for &c in &chunks[cut..] {
                resumed.run(c);
            }
            assert_eq!(resumed.interactions(), chunks.iter().sum::<u64>());
            assert_eq!(
                resumed.save_state().to_bytes(),
                reference_bytes,
                "resume from cut {cut} diverged from the uninterrupted run"
            );
        }
    }

    #[test]
    fn snapshot_round_trip_works_on_the_sharded_substrate() {
        let config = HybridConfig {
            substrate: HybridSubstrate::Sharded {
                shards: 2,
                threads: 1,
            },
            ..HybridConfig::default()
        };
        // Trajectories are a function of the chunk schedule too, so the
        // reference replays the exact `run` calls the victim + resumed pair
        // make between them.
        let mut reference = HybridSimulator::with_config(Rumor, 4_096, 11, config).unwrap();
        reference.transfer(0, 1, 1).unwrap();
        reference.run(10_000);
        reference.run(20_000);

        let mut victim = HybridSimulator::with_config(Rumor, 4_096, 11, config).unwrap();
        victim.transfer(0, 1, 1).unwrap();
        victim.run(10_000);
        let snap = victim.save_state();
        let mut resumed = HybridSimulator::with_config(Rumor, 4_096, 11, config).unwrap();
        resumed.restore_state(&snap).unwrap();
        resumed.run(20_000);
        assert_eq!(
            resumed.save_state().to_bytes(),
            reference.save_state().to_bytes()
        );
    }

    #[test]
    fn snapshot_restore_validates_population_and_configuration() {
        let sim = HybridSimulator::new(Rumor, 1_000, 1).unwrap();
        let snap = sim.save_state();

        let mut other_n = HybridSimulator::new(Rumor, 2_000, 1).unwrap();
        assert!(matches!(
            other_n.restore_state(&snap),
            Err(SimError::SnapshotMismatch { .. })
        ));

        let other_cfg = HybridConfig {
            switch_up: 128.0,
            ..HybridConfig::default()
        };
        let mut other_thresholds =
            HybridSimulator::with_config(Rumor, 1_000, 1, other_cfg).unwrap();
        assert!(matches!(
            other_thresholds.restore_state(&snap),
            Err(SimError::SnapshotMismatch { .. })
        ));

        let sharded_cfg = HybridConfig {
            substrate: HybridSubstrate::Sharded {
                shards: 2,
                threads: 1,
            },
            ..HybridConfig::default()
        };
        let mut other_substrate =
            HybridSimulator::with_config(Rumor, 1_000, 1, sharded_cfg).unwrap();
        assert!(matches!(
            other_substrate.restore_state(&snap),
            Err(SimError::SnapshotMismatch { .. })
        ));

        // A failed restore leaves the target runnable.
        other_substrate.run(500);
        assert_eq!(other_substrate.interactions(), 500);
        assert!(other_substrate.fault().is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Hysteresis no-thrash: occupancy sequences confined to the band
        /// between the thresholds never migrate, whatever their shape.
        #[test]
        fn monitor_never_switches_inside_the_hysteresis_band(
            seed in any::<u64>(),
            observations in 1usize..200,
        ) {
            let n = 1_000_000u64; // √n = 1000: band is q_occ ∈ (√8000, √64000] ≈ (89, 253]
            let mut monitor = OccupancyMonitor::new(n, 64.0, 8.0, 2);
            let mut x = seed;
            for _ in 0..observations {
                // xorshift; occupancy confined to [90, 253]
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let occ = 90 + (x % 164) as usize;
                prop_assert_eq!(monitor.observe(occ), None);
                prop_assert!(monitor.is_dense());
            }
        }

        /// A single outlier observation never migrates with `window >= 2`,
        /// and sustained crossings migrate exactly once per direction.
        #[test]
        fn monitor_needs_a_sustained_crossing(window in 2u32..6) {
            let n = 10_000u64; // √n = 100: up at q² > 6400, down at q² < 800
            let mut monitor = OccupancyMonitor::new(n, 64.0, 8.0, window);
            // Outlier, then back in band: no switch.
            prop_assert_eq!(monitor.observe(500), None);
            prop_assert_eq!(monitor.observe(50), None);
            // Sustained: switches exactly at the window-th observation.
            for _ in 0..window - 1 {
                prop_assert_eq!(monitor.observe(500), None);
            }
            prop_assert_eq!(monitor.observe(500), Some(SwitchDirection::ToAgent));
            prop_assert!(!monitor.is_dense());
            // Same discipline on the way back down.
            for _ in 0..window - 1 {
                prop_assert_eq!(monitor.observe(5), None);
            }
            prop_assert_eq!(monitor.observe(5), Some(SwitchDirection::ToDense));
            prop_assert!(monitor.is_dense());
        }
    }
}
