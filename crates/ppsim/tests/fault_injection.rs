//! Fault-injection integration suite: SIGKILL-style interruption of every
//! engine at every chunk boundary of a coprime schedule, resume from the
//! serialized snapshot, and verify the trajectory is bit-identical to the
//! uninterrupted run (see `ppsim::faultsim` for why snapshot-byte equality
//! is the right equivalence).
//!
//! The chunk sizes are primes (499, 1009, 4999, 7919), so boundaries never
//! align with an engine's internal grid: kills land *inside* sharded epoch
//! windows, hybrid occupancy-monitor cadences and — with the state-minting
//! workload — between hybrid representation migrations.

use ppsim::faultsim::{coprime_chunks, kill_and_resume, sweep_kill_points};
use ppsim::{
    BatchedSimulator, DenseProtocol, DenseSimulator, Engine, HybridConfig, HybridSimulator,
    HybridSubstrate, Protocol, ShardedBatchedSimulator, ShardedConfig, Simulator, SwitchDirection,
};
use rand::rngs::SmallRng;

/// One-way epidemic on two dense states (occupancy ≤ 2, stays dense).
#[derive(Debug, Clone, Copy)]
struct Rumor;
impl DenseProtocol for Rumor {
    type Output = bool;
    fn num_states(&self) -> usize {
        2
    }
    fn initial_state(&self) -> usize {
        0
    }
    fn transition(&self, u: usize, v: usize) -> (usize, usize) {
        (u.max(v), v)
    }
    fn output(&self, s: usize) -> bool {
        s == 1
    }
}

/// A state-minting protocol scattering the population over `Θ(n)` states —
/// drives the hybrid engine across its dense → per-agent migration.
#[derive(Debug, Clone, Copy)]
struct Scatter {
    q: usize,
}
impl DenseProtocol for Scatter {
    type Output = usize;
    fn num_states(&self) -> usize {
        self.q
    }
    fn initial_state(&self) -> usize {
        0
    }
    fn transition(&self, u: usize, v: usize) -> (usize, usize) {
        (((u + v + 1) * 2) % self.q, v)
    }
    fn output(&self, s: usize) -> usize {
        s
    }
}

/// Token-conserving sequential protocol with RNG-dependent transitions, so
/// a resume that mishandled the RNG state would diverge immediately.
#[derive(Debug, Clone, Copy)]
struct TokenDrift;
impl Protocol for TokenDrift {
    type State = u64;
    type Output = u64;
    fn initial_state(&self) -> u64 {
        1
    }
    fn interact(&self, u: &mut u64, v: &mut u64, rng: &mut SmallRng) {
        use rand::Rng;
        if *v > 0 && rng.gen_bool(0.75) {
            *v -= 1;
            *u += 1;
        }
    }
    fn output(&self, s: &u64) -> u64 {
        *s
    }
}

#[test]
fn sequential_engine_survives_kills_at_every_chunk_boundary() {
    let chunks = coprime_chunks(6_000, 499);
    let diverged = sweep_kill_points(
        || Simulator::new(TokenDrift, 300, 0xFA117),
        |s, b| s.run(b),
        &chunks,
    )
    .unwrap();
    assert_eq!(diverged, None, "sequential resume must be bit-identical");
}

#[test]
fn batched_engine_survives_kills_at_every_chunk_boundary() {
    let chunks = coprime_chunks(12_000, 1_009);
    let diverged = sweep_kill_points(
        || {
            let mut sim = BatchedSimulator::new(Rumor, 5_000, 0xBA7C4)?;
            sim.transfer(0, 1, 1)?;
            Ok(sim)
        },
        |s, b| s.run(b),
        &chunks,
    )
    .unwrap();
    assert_eq!(diverged, None, "batched resume must be bit-identical");
}

#[test]
fn sharded_engine_kills_land_inside_epoch_windows() {
    // Prime chunks against a 2048-interaction epoch grid: every kill point
    // lands mid-window, so the restored epoch bookkeeping is exercised.
    let config = ShardedConfig {
        shards: 4,
        threads: 2,
        epoch_interactions: Some(2_048),
    };
    let chunks = coprime_chunks(12_000, 1_009);
    assert!(
        chunks[..chunks.len() - 1].iter().all(|c| c % 2_048 != 0),
        "chunk schedule must straddle the epoch grid"
    );
    let diverged = sweep_kill_points(
        || {
            let mut sim = ShardedBatchedSimulator::new(Rumor, 6_000, 0x54A2D, config)?;
            sim.transfer(0, 1, 1)?;
            Ok(sim)
        },
        |s, b| s.run(b),
        &chunks,
    )
    .unwrap();
    assert_eq!(diverged, None, "sharded resume must be bit-identical");
}

#[test]
fn hybrid_engine_kills_land_around_representation_migrations() {
    let n = 4_000usize;
    let total = 20 * n as u64;
    let chunks = coprime_chunks(total, 7_919);
    let make = || HybridSimulator::new(Scatter { q: 1 << 14 }, n, 0x4B12D);

    // The schedule must actually cross a migration, otherwise this test
    // would silently degrade into the batched case.
    let mut probe = make().unwrap();
    for &c in &chunks {
        probe.run(c);
    }
    assert!(
        probe
            .switches()
            .iter()
            .any(|e| e.direction == SwitchDirection::ToAgent),
        "the Θ(n)-occupancy workload must migrate dense → per-agent \
         (switches: {:?})",
        probe.switches()
    );
    drop(probe);

    let diverged = sweep_kill_points(make, |s, b| s.run(b), &chunks).unwrap();
    assert_eq!(
        diverged, None,
        "hybrid resume must replay migrations bit-identically"
    );
}

#[test]
fn hybrid_on_sharded_substrate_survives_kills() {
    // The gnarliest path: epoch windows *and* representation migrations
    // under the same kill schedule.
    let config = HybridConfig {
        substrate: HybridSubstrate::Sharded {
            shards: 2,
            threads: 1,
        },
        ..HybridConfig::default()
    };
    let n = 3_000usize;
    let chunks = coprime_chunks(15 * n as u64, 4_999);
    let diverged = sweep_kill_points(
        || HybridSimulator::with_config(Scatter { q: 1 << 13 }, n, 0x5EED5, config),
        |s, b| s.run(b),
        &chunks,
    )
    .unwrap();
    assert_eq!(diverged, None);
}

#[test]
fn dense_facade_survives_kills_for_every_resolved_engine() {
    for engine in [
        Engine::Sequential,
        Engine::Batched,
        Engine::Sharded {
            shards: 2,
            threads: 1,
        },
        Engine::Hybrid,
        Engine::Auto,
    ] {
        let chunks = coprime_chunks(8_000, 1_009);
        let diverged = sweep_kill_points(
            || {
                let mut sim = DenseSimulator::new(engine, Rumor, 2_000, 0xD15C)?;
                sim.transfer(0, 1, 1)?;
                Ok(sim)
            },
            |s, b| s.run(b),
            &chunks,
        )
        .unwrap();
        assert_eq!(
            diverged, None,
            "DenseSimulator({engine:?}) resume must be bit-identical"
        );
    }
}

#[test]
fn killed_before_the_first_and_after_the_last_interaction() {
    // The degenerate kill points: a snapshot of the initial configuration
    // and a snapshot of the finished run both restore exactly.
    let chunks = coprime_chunks(5_000, 997);
    for kill_after in [0, chunks.len()] {
        let verdict = kill_and_resume(
            || {
                let mut sim = BatchedSimulator::new(Rumor, 2_000, 13)?;
                sim.transfer(0, 1, 1)?;
                Ok(sim)
            },
            |s, b| s.run(b),
            &chunks,
            kill_after,
        )
        .unwrap();
        assert!(verdict.bit_identical());
    }
}
