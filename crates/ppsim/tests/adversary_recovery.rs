//! Restart-safe recovery probing around fault injection (ISSUE 7,
//! satellite 2).
//!
//! Two regressions pinned here:
//!
//! * the hybrid engine's [`OccupancyMonitor`] must *discard* its in-progress
//!   observation streak when a fault is injected — the streak's observations
//!   describe the pre-fault configuration, so completing a migration window
//!   against the post-fault one would switch representations on stale
//!   evidence;
//! * fault injection must land correctly **mid-agent-stint**: when the
//!   hybrid engine is in per-agent mode the corruption overwrites native
//!   structs through the codec, conserves mass exactly, leaves the
//!   representation where it was, and the run continues to reconvergence.

use rand::rngs::SmallRng;

use ppsim::{
    seeded_rng, AdversarialRun, CorruptionTarget, DenseProtocol, DenseSimulator, Engine,
    FaultEvent, FaultKind, FaultPlan, HybridSimulator, InitStrategy, OccupancyMonitor,
    SwitchDirection,
};

/// One-way epidemic on two dense states (local copy: integration tests keep
/// their own fixtures so the library's test protocols stay private).
#[derive(Debug, Clone, Copy)]
struct DenseRumor;

impl DenseProtocol for DenseRumor {
    type Output = bool;
    fn num_states(&self) -> usize {
        2
    }
    fn initial_state(&self) -> usize {
        0
    }
    fn transition(&self, u: usize, v: usize) -> (usize, usize) {
        (u.max(v), v)
    }
    fn output(&self, s: usize) -> bool {
        s == 1
    }
}

/// `reset_window` restarts the migration streak without flipping the mode
/// belief: an observation streak interrupted by a fault must start over.
#[test]
fn reset_window_discards_streak_without_flipping_mode() {
    // n = 100 → √n = 10; switch_up = 2.0 → up_threshold = 20.  An occupancy
    // of 5 has pressure 25 > 20, so every observation below crosses.
    let mut monitor = OccupancyMonitor::new(100, 2.0, 1.0, 2);
    assert!(monitor.is_dense());

    // First crossing observation: streak 1 of 2, no migration yet.
    assert_eq!(monitor.observe(5), None);

    // Fault injected here — the streak is stale evidence.
    monitor.reset_window();

    // Without the reset this observation would complete the window and
    // migrate; with it, the streak restarts at 1.
    assert_eq!(monitor.observe(5), None);
    assert!(monitor.is_dense(), "reset_window must not flip the mode");

    // The streak completes against post-fault observations only.
    assert_eq!(monitor.observe(5), Some(SwitchDirection::ToAgent));
    assert!(!monitor.is_dense());
}

/// Corrupting the hybrid engine while a per-agent stint is mid-flight:
/// mass is conserved, the representation stays per-agent, and the epidemic
/// still reconverges afterwards.
#[test]
fn hybrid_fault_mid_agent_stint_conserves_mass_and_reconverges() {
    let n = 300usize;
    let mut sim = HybridSimulator::new(DenseRumor, n, 7).unwrap();
    sim.transfer(0, 1, 1).unwrap();
    sim.switch_to_agent().unwrap();
    assert!(!sim.is_dense());

    // A budget that is not a multiple of any internal cadence: the stint is
    // genuinely mid-flight when the fault lands.
    sim.run(137);
    assert_eq!(sim.interactions(), 137);

    // Knock 30 agents (some already infected) back to susceptible.
    let mut rng: SmallRng = seeded_rng(99);
    sim.corrupt(30, &mut rng, &mut |_, _| 0).unwrap();

    let counts = sim.counts();
    assert_eq!(
        counts.iter().sum::<u64>(),
        n as u64,
        "corruption moved mass"
    );
    assert!(
        !sim.is_dense(),
        "fault injection must not migrate the representation"
    );

    let outcome = sim.run_until(|s| s.count_of(1) == n as u64, 64, 50_000_000);
    assert!(
        outcome.converged(),
        "epidemic failed to reconverge after mid-stint corruption: {outcome:?}"
    );
}

/// End-to-end through [`AdversarialRun`]: a fault plan fires while the
/// hybrid engine is in per-agent mode, the recovery record closes, and the
/// occupancy monitor's post-fault window starts fresh (the run neither
/// panics nor stalls on stale-streak migrations).
#[test]
fn adversarial_run_fires_fault_inside_an_agent_stint() {
    let n = 400usize;
    let plan = FaultPlan::new(vec![FaultEvent {
        at: 4_000,
        kind: FaultKind::Corrupt {
            agents: 40,
            target: CorruptionTarget::State(0),
        },
    }])
    .unwrap();
    let mut run =
        AdversarialRun::new(Engine::Hybrid, DenseRumor, n, 11, InitStrategy::Clean, plan).unwrap();
    run.inner_mut().transfer(0, 1, 1).unwrap();
    let DenseSimulator::Hybrid(h) = run.inner_mut() else {
        panic!("Engine::Hybrid must build the hybrid engine");
    };
    h.switch_to_agent().unwrap();
    assert!(!h.is_dense());

    let outcome = run
        .run_until(|s| s.count_of(1) == s.population(), 128, 20_000_000)
        .unwrap();
    assert!(outcome.converged(), "no reconvergence: {outcome:?}");
    assert_eq!(run.events_fired(), 1);
    let record = &run.records()[0];
    assert_eq!(record.injected_at, 4_000);
    assert!(
        record.recovery_time().is_some(),
        "recovery record never closed: {record:?}"
    );
}
