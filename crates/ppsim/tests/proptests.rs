//! Property-based tests for the simulation engine.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::Rng;

use ppsim::faultsim::kill_and_resume;
use ppsim::scheduler::{AllPairsScheduler, Scheduler, UniformScheduler};
use ppsim::{
    derive_seed, seeded_rng, AdversarialRun, BatchedSimulator, Checkpointable, CorruptionTarget,
    DecodedStint, DenseProtocol, Engine, EngineSnapshot, FaultEvent, FaultKind, FaultPlan,
    HybridSimulator, IndexCodec, InitStrategy, Protocol, ShardedBatchedSimulator, ShardedConfig,
    Simulator, StateSpaceTracker,
};

/// One-way epidemic on two dense states, for the count-based engines.
#[derive(Debug, Clone, Copy)]
struct DenseRumor;

impl DenseProtocol for DenseRumor {
    type Output = bool;
    fn num_states(&self) -> usize {
        2
    }
    fn initial_state(&self) -> usize {
        0
    }
    fn transition(&self, u: usize, v: usize) -> (usize, usize) {
        (u.max(v), v)
    }
    fn output(&self, s: usize) -> bool {
        s == 1
    }
}

/// Assert `restore(save(sim))` is the identity on observable state: the
/// restored engine's own snapshot reproduces the original bytes exactly
/// (snapshot bytes are a pure function of the trajectory, so byte equality
/// is observable-state equality — see `ppsim::faultsim`).
fn assert_roundtrip_identity<S: Checkpointable>(sim: &S, mut fresh: S) {
    let bytes = sim.save_state().to_bytes();
    let snapshot = EngineSnapshot::from_bytes(&bytes).unwrap();
    fresh.restore_state(&snapshot).unwrap();
    assert_eq!(fresh.save_state().to_bytes(), bytes);
}

/// A protocol that conserves the sum of its (numeric) states: tokens are moved from
/// the responder to the initiator, one at a time.
#[derive(Debug, Clone, Copy)]
struct TokenDrift;

impl Protocol for TokenDrift {
    type State = u64;
    type Output = u64;
    fn initial_state(&self) -> u64 {
        1
    }
    fn interact(&self, u: &mut u64, v: &mut u64, _rng: &mut SmallRng) {
        if *v > 0 {
            *v -= 1;
            *u += 1;
        }
    }
    fn output(&self, s: &u64) -> u64 {
        *s
    }
}

proptest! {
    /// The uniform scheduler only ever returns ordered pairs of distinct, in-range indices.
    #[test]
    fn uniform_scheduler_pairs_valid(n in 2usize..200, seed in any::<u64>(), draws in 1usize..500) {
        let mut sched = UniformScheduler::new();
        let mut rng = seeded_rng(seed);
        for _ in 0..draws {
            let (i, j) = sched.next_pair(n, &mut rng);
            prop_assert!(i < n);
            prop_assert!(j < n);
            prop_assert_ne!(i, j);
        }
    }

    /// A full cycle of the all-pairs scheduler visits each ordered pair exactly once.
    #[test]
    fn all_pairs_cycle_is_a_permutation(n in 2usize..30) {
        let mut sched = AllPairsScheduler::new();
        let mut rng = seeded_rng(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..AllPairsScheduler::cycle_len(n) {
            let p = sched.next_pair(n, &mut rng);
            prop_assert!(seen.insert(p));
        }
        prop_assert_eq!(seen.len() as u64, AllPairsScheduler::cycle_len(n));
    }

    /// Simulation preserves protocol-level invariants: the total token count is conserved
    /// by a conserving transition function, regardless of seed and schedule length.
    #[test]
    fn simulation_conserves_conserved_quantities(
        n in 2usize..100,
        seed in any::<u64>(),
        steps in 0u64..5_000,
    ) {
        let mut sim = Simulator::new(TokenDrift, n, seed).unwrap();
        sim.run(steps);
        let total: u64 = sim.states().iter().sum();
        prop_assert_eq!(total, n as u64);
        prop_assert_eq!(sim.interactions(), steps);
    }

    /// Two simulators with the same seed and population evolve identically.
    #[test]
    fn runs_are_reproducible(n in 2usize..64, seed in any::<u64>(), steps in 0u64..2_000) {
        let mut a = Simulator::new(TokenDrift, n, seed).unwrap();
        let mut b = Simulator::new(TokenDrift, n, seed).unwrap();
        a.run(steps);
        b.run(steps);
        prop_assert_eq!(a.states(), b.states());
    }

    /// Seed derivation is injective in practice over small index ranges.
    #[test]
    fn derived_seeds_do_not_collide(master in any::<u64>()) {
        let mut seen = std::collections::HashSet::new();
        for stream in 0..256u64 {
            prop_assert!(seen.insert(derive_seed(master, stream)));
        }
    }

    /// The state-space tracker never reports more distinct states than states recorded,
    /// and recording is idempotent.
    #[test]
    fn tracker_bounds(states in proptest::collection::vec(0u32..50, 0..200)) {
        let mut t = StateSpaceTracker::new();
        t.record(&states);
        let first = t.distinct_states();
        prop_assert!(first <= states.len());
        prop_assert!(first <= 50);
        t.record(&states);
        prop_assert_eq!(t.distinct_states(), first);
    }

    /// The parallel trial runner returns exactly the same results as a sequential map.
    #[test]
    fn parallel_trials_match_sequential(trials in 0usize..40, threads in 1usize..8) {
        let par = ppsim::run_trials_with_threads(trials, threads, |i| derive_seed(1, i as u64));
        let seq: Vec<u64> = (0..trials).map(|i| derive_seed(1, i as u64)).collect();
        prop_assert_eq!(par, seq);
    }

    /// `restore(save)` is the identity on observable state for all four
    /// engines, at arbitrary points of arbitrary trajectories.
    #[test]
    fn snapshot_roundtrip_is_identity_on_every_engine(
        n in 3usize..400,
        seed in any::<u64>(),
        steps in 0u64..3_000,
    ) {
        let mut seq = Simulator::new(TokenDrift, n, seed).unwrap();
        seq.run(steps);
        assert_roundtrip_identity(&seq, Simulator::new(TokenDrift, n, seed).unwrap());

        let mut batched = BatchedSimulator::new(DenseRumor, n, seed).unwrap();
        batched.transfer(0, 1, 1).unwrap();
        batched.run(steps);
        assert_roundtrip_identity(&batched, BatchedSimulator::new(DenseRumor, n, seed).unwrap());

        let config = ShardedConfig { shards: 2, threads: 1, epoch_interactions: Some(512) };
        let mut sharded = ShardedBatchedSimulator::new(DenseRumor, n.max(4), seed, config).unwrap();
        sharded.run(steps);
        assert_roundtrip_identity(
            &sharded,
            ShardedBatchedSimulator::new(DenseRumor, n.max(4), seed, config).unwrap(),
        );

        let mut hybrid = HybridSimulator::new(DenseRumor, n, seed).unwrap();
        hybrid.run(steps);
        assert_roundtrip_identity(&hybrid, HybridSimulator::new(DenseRumor, n, seed).unwrap());
    }

    /// Saving the epidemic at a random budget and resuming from the
    /// serialized snapshot yields the bit-identical trajectory the
    /// uninterrupted run (over the same chunk schedule) produces.
    #[test]
    fn epidemic_saved_at_a_random_budget_resumes_bit_identically(
        n in 4usize..500,
        seed in any::<u64>(),
        kill_at in 0u64..4_000,
        rest in 1u64..4_000,
    ) {
        let verdict = kill_and_resume(
            || {
                let mut sim = BatchedSimulator::new(DenseRumor, n, seed)?;
                sim.transfer(0, 1, 1)?;
                Ok(sim)
            },
            |s, b| s.run(b),
            &[kill_at, rest],
            1,
        ).unwrap();
        prop_assert!(verdict.bit_identical());
    }

    /// Fault injection moves mass between states but never creates or
    /// destroys it, in every representation: dense counts (batched), shard
    /// splits (sharded), and decoded per-agent stints.
    #[test]
    fn corruption_conserves_mass_in_every_representation(
        n in 4usize..1_500,
        seed in any::<u64>(),
        steps in 0u64..2_000,
        k_raw in 0u64..2_000,
        shards in 1usize..5,
    ) {
        let k = k_raw % (n as u64 + 1);
        let mut rng = seeded_rng(derive_seed(seed, 0xFA));
        let mut scribble = |_: usize, r: &mut SmallRng| r.gen_range(0..2usize);

        let mut batched = BatchedSimulator::new(DenseRumor, n, seed).unwrap();
        batched.transfer(0, 1, 1).unwrap();
        batched.run(steps);
        batched.corrupt(k, &mut rng, &mut scribble).unwrap();
        prop_assert_eq!(batched.counts().iter().sum::<u64>(), n as u64);

        let config = ShardedConfig { shards, threads: 1, epoch_interactions: Some(256) };
        let mut sharded = ShardedBatchedSimulator::new(DenseRumor, n, seed, config).unwrap();
        sharded.transfer(0, 1, 1).unwrap();
        sharded.run(steps);
        sharded.corrupt(k, &mut rng, &mut scribble).unwrap();
        prop_assert_eq!(sharded.counts().iter().sum::<u64>(), n as u64);

        let counts = vec![n as u64 - 1, 1];
        let mut stint = DecodedStint::boxed(IndexCodec(DenseRumor), &counts, seed);
        stint.run(steps);
        stint.corrupt(k, &mut rng, &mut scribble).unwrap();
        prop_assert_eq!(stint.counts().iter().sum::<u64>(), n as u64);
    }

    /// Killing an adversarial run at an arbitrary point of its fault plan —
    /// before, between, or inside fault events — and resuming from the
    /// snapshot replays the identical fault sequence bit-for-bit.
    #[test]
    fn fault_plan_saved_mid_plan_resumes_bit_identically(
        n in 20usize..400,
        seed in any::<u64>(),
        kill_at in 0u64..6_000,
        rest in 1u64..6_000,
        kill_after in 0usize..3,
        engine_pick in 0usize..3,
    ) {
        let engine = [Engine::Sequential, Engine::Batched, Engine::Hybrid][engine_pick];
        let plan = FaultPlan::new(vec![
            FaultEvent {
                at: 900,
                kind: FaultKind::Corrupt { agents: 7, target: CorruptionTarget::Uniform { states: 2 } },
            },
            FaultEvent {
                at: 2_500,
                kind: FaultKind::Silence { agents: 4, window: 600 },
            },
            FaultEvent {
                at: 4_800,
                kind: FaultKind::Corrupt { agents: 3, target: CorruptionTarget::State(0) },
            },
        ]).unwrap();
        let verdict = kill_and_resume(
            || AdversarialRun::new(
                engine,
                DenseRumor,
                n,
                seed,
                InitStrategy::SeededArbitrary { states: 2, seed: derive_seed(seed, 21) },
                plan.clone(),
            ),
            |r, b| r.run(b).unwrap(),
            &[kill_at, rest],
            kill_after,
        ).unwrap();
        prop_assert!(verdict.bit_identical(), "{}", verdict.describe());
    }
}
