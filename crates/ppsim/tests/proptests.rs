//! Property-based tests for the simulation engine.

use proptest::prelude::*;
use rand::rngs::SmallRng;

use ppsim::scheduler::{AllPairsScheduler, Scheduler, UniformScheduler};
use ppsim::{derive_seed, seeded_rng, Protocol, Simulator, StateSpaceTracker};

/// A protocol that conserves the sum of its (numeric) states: tokens are moved from
/// the responder to the initiator, one at a time.
#[derive(Debug, Clone, Copy)]
struct TokenDrift;

impl Protocol for TokenDrift {
    type State = u64;
    type Output = u64;
    fn initial_state(&self) -> u64 {
        1
    }
    fn interact(&self, u: &mut u64, v: &mut u64, _rng: &mut SmallRng) {
        if *v > 0 {
            *v -= 1;
            *u += 1;
        }
    }
    fn output(&self, s: &u64) -> u64 {
        *s
    }
}

proptest! {
    /// The uniform scheduler only ever returns ordered pairs of distinct, in-range indices.
    #[test]
    fn uniform_scheduler_pairs_valid(n in 2usize..200, seed in any::<u64>(), draws in 1usize..500) {
        let mut sched = UniformScheduler::new();
        let mut rng = seeded_rng(seed);
        for _ in 0..draws {
            let (i, j) = sched.next_pair(n, &mut rng);
            prop_assert!(i < n);
            prop_assert!(j < n);
            prop_assert_ne!(i, j);
        }
    }

    /// A full cycle of the all-pairs scheduler visits each ordered pair exactly once.
    #[test]
    fn all_pairs_cycle_is_a_permutation(n in 2usize..30) {
        let mut sched = AllPairsScheduler::new();
        let mut rng = seeded_rng(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..AllPairsScheduler::cycle_len(n) {
            let p = sched.next_pair(n, &mut rng);
            prop_assert!(seen.insert(p));
        }
        prop_assert_eq!(seen.len() as u64, AllPairsScheduler::cycle_len(n));
    }

    /// Simulation preserves protocol-level invariants: the total token count is conserved
    /// by a conserving transition function, regardless of seed and schedule length.
    #[test]
    fn simulation_conserves_conserved_quantities(
        n in 2usize..100,
        seed in any::<u64>(),
        steps in 0u64..5_000,
    ) {
        let mut sim = Simulator::new(TokenDrift, n, seed).unwrap();
        sim.run(steps);
        let total: u64 = sim.states().iter().sum();
        prop_assert_eq!(total, n as u64);
        prop_assert_eq!(sim.interactions(), steps);
    }

    /// Two simulators with the same seed and population evolve identically.
    #[test]
    fn runs_are_reproducible(n in 2usize..64, seed in any::<u64>(), steps in 0u64..2_000) {
        let mut a = Simulator::new(TokenDrift, n, seed).unwrap();
        let mut b = Simulator::new(TokenDrift, n, seed).unwrap();
        a.run(steps);
        b.run(steps);
        prop_assert_eq!(a.states(), b.states());
    }

    /// Seed derivation is injective in practice over small index ranges.
    #[test]
    fn derived_seeds_do_not_collide(master in any::<u64>()) {
        let mut seen = std::collections::HashSet::new();
        for stream in 0..256u64 {
            prop_assert!(seen.insert(derive_seed(master, stream)));
        }
    }

    /// The state-space tracker never reports more distinct states than states recorded,
    /// and recording is idempotent.
    #[test]
    fn tracker_bounds(states in proptest::collection::vec(0u32..50, 0..200)) {
        let mut t = StateSpaceTracker::new();
        t.record(&states);
        let first = t.distinct_states();
        prop_assert!(first <= states.len());
        prop_assert!(first <= 50);
        t.record(&states);
        prop_assert_eq!(t.distinct_states(), first);
    }

    /// The parallel trial runner returns exactly the same results as a sequential map.
    #[test]
    fn parallel_trials_match_sequential(trials in 0usize..40, threads in 1usize..8) {
        let par = ppsim::run_trials_with_threads(trials, threads, |i| derive_seed(1, i as u64));
        let seq: Vec<u64> = (0..trials).map(|i| derive_seed(1, i as u64)).collect();
        prop_assert_eq!(par, seq);
    }
}
