//! Golden-file tests pinning the `ppsim::snapshot` binary format (v1).
//!
//! These bytes are a compatibility contract: checkpoints written by one
//! build must restore in the next.  If a change here is intentional, bump
//! [`SNAPSHOT_VERSION`] and teach `EngineSnapshot::from_bytes` to migrate
//! (or reject) the old version — never silently repin the golden bytes.

use ppsim::snapshot::{crc32, ENGINE_BATCHED, ENGINE_SEQUENTIAL, SNAPSHOT_MAGIC};
use ppsim::{
    BatchedSimulator, Checkpointable, DenseProtocol, EngineSnapshot, Protocol, SimError, Simulator,
    SNAPSHOT_VERSION,
};
use rand::rngs::SmallRng;

#[derive(Debug, Clone, Copy)]
struct Rumor;
impl DenseProtocol for Rumor {
    type Output = bool;
    fn num_states(&self) -> usize {
        2
    }
    fn initial_state(&self) -> usize {
        0
    }
    fn transition(&self, u: usize, v: usize) -> (usize, usize) {
        (u.max(v), v)
    }
    fn output(&self, s: usize) -> bool {
        s == 1
    }
}

#[derive(Debug, Clone, Copy)]
struct Flip;
impl Protocol for Flip {
    type State = u8;
    type Output = u8;
    fn initial_state(&self) -> u8 {
        0
    }
    fn interact(&self, u: &mut u8, _v: &mut u8, _rng: &mut SmallRng) {
        *u ^= 1;
    }
    fn output(&self, s: &u8) -> u8 {
        *s
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// The full serialized frame of a tiny batched run, byte for byte.  The
/// trajectory is deterministic (fixed protocol, n, seed, budget), so any
/// deviation is a format change, not noise.
#[test]
fn golden_batched_snapshot_bytes_are_pinned() {
    let mut sim = BatchedSimulator::new(Rumor, 4, 1).unwrap();
    sim.transfer(0, 1, 1).unwrap();
    sim.run(7);
    let bytes = sim.save_state().to_bytes();
    assert_eq!(
        hex(&bytes),
        "505053530100000002540000000000000004000000000000000200000000000000\
         c3dd56fdc1235e8d08856fa2f7082263d0f294247e8601088c51c766153e44b3\
         070000000000000000000000000000000100000000000000010000000400000000000000401433f7"
    );
}

/// The sequential engine's frame, pinned the same way.
#[test]
fn golden_sequential_snapshot_bytes_are_pinned() {
    let mut sim = Simulator::new(Flip, 3, 2).unwrap();
    sim.run(5);
    let bytes = sim.save_state().to_bytes();
    assert_eq!(
        hex(&bytes),
        "50505353010000000133000000000000008f436e9f7f8923b7242c7e619ea14086\
         8a485b8924b6737ea2782fa36be47f9905000000000000000300000000000000010000703754fb"
    );
}

/// The frame layout: magic, little-endian version, engine tag, u64 payload
/// length, payload, trailing CRC32 of the payload.
#[test]
fn frame_layout_is_the_documented_one() {
    let snapshot = EngineSnapshot::new(ENGINE_BATCHED, vec![0xAB, 0xCD, 0xEF]);
    let bytes = snapshot.to_bytes();
    assert_eq!(&bytes[0..4], &SNAPSHOT_MAGIC);
    assert_eq!(
        u32::from_le_bytes(bytes[4..8].try_into().unwrap()),
        SNAPSHOT_VERSION
    );
    assert_eq!(bytes[8], ENGINE_BATCHED);
    assert_eq!(u64::from_le_bytes(bytes[9..17].try_into().unwrap()), 3);
    assert_eq!(&bytes[17..20], &[0xAB, 0xCD, 0xEF]);
    let crc = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
    assert_eq!(crc, crc32(&bytes[17..20]));
    assert_eq!(bytes.len(), 24);
}

/// Every single-byte corruption of a frame is rejected, except the engine
/// tag — which the CRC deliberately does not cover (it is validated by
/// `expect_engine` against what the *caller* expects, a stronger check
/// than self-consistency).
#[test]
fn any_flipped_byte_is_detected() {
    let bytes = EngineSnapshot::new(ENGINE_SEQUENTIAL, vec![1, 2, 3, 4]).to_bytes();
    assert!(EngineSnapshot::from_bytes(&bytes).is_ok());
    for i in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0x40;
        if i == 8 {
            // The engine-tag byte: decodes, but no longer passes the
            // caller-side engine check.
            let decoded = EngineSnapshot::from_bytes(&corrupt).unwrap();
            assert!(decoded
                .expect_engine(ENGINE_SEQUENTIAL, "sequential")
                .is_err());
        } else {
            assert!(
                EngineSnapshot::from_bytes(&corrupt).is_err(),
                "flipping byte {i} must not decode"
            );
        }
    }
}

/// Truncations at every length are rejected, never panicking.
#[test]
fn truncations_are_rejected() {
    let bytes = EngineSnapshot::new(ENGINE_BATCHED, vec![9; 16]).to_bytes();
    for len in 0..bytes.len() {
        assert!(EngineSnapshot::from_bytes(&bytes[..len]).is_err());
    }
}

/// A frame from a future format version is refused up front (with a
/// version-mismatch error, not a CRC or decode failure downstream).
#[test]
fn future_versions_are_refused() {
    let mut bytes = EngineSnapshot::new(ENGINE_BATCHED, vec![7; 8]).to_bytes();
    let future = (SNAPSHOT_VERSION + 1).to_le_bytes();
    bytes[4..8].copy_from_slice(&future);
    let crc_at = bytes.len() - 4;
    let crc = crc32(&bytes[..crc_at]).to_le_bytes();
    bytes[crc_at..].copy_from_slice(&crc);
    match EngineSnapshot::from_bytes(&bytes) {
        Err(SimError::SnapshotVersion { found, .. }) => {
            assert_eq!(found, SNAPSHOT_VERSION + 1);
        }
        other => panic!("expected a version mismatch, got {other:?}"),
    }
}
