//! The standard protocol registry: every [`DenseProtocol`] in the
//! workspace at parameters small enough for exhaustive verification,
//! type-erased behind a uniform runner so the binary and the CI job can
//! iterate `ppcheck verify --all` without naming concrete types.
//!
//! [`DenseProtocol`]: ppsim::DenseProtocol

use crate::verify::{verify_protocol, verify_with_codec, ProtocolReport, VerifyOptions};
use ppsim::stint::AgentCodec;
use ppsim::DenseProtocol;

/// One protocol under verification: a display name plus a runner that
/// builds the protocol and executes the full battery.
pub struct RegisteredProtocol {
    name: &'static str,
    runner: Box<dyn Fn() -> ProtocolReport + Send + Sync>,
}

impl RegisteredProtocol {
    /// Register a plain dense protocol.
    pub fn new<P, F>(name: &'static str, opts: VerifyOptions, build: F) -> Self
    where
        P: DenseProtocol,
        F: Fn() -> P + Send + Sync + 'static,
    {
        RegisteredProtocol {
            name,
            runner: Box::new(move || verify_protocol(&build(), &opts)),
        }
    }

    /// Register a codec-bearing protocol; the battery additionally checks
    /// `encode ∘ decode` identity and native/δ bisimulation.
    pub fn with_codec<P, F>(name: &'static str, opts: VerifyOptions, build: F) -> Self
    where
        P: AgentCodec,
        F: Fn() -> P + Send + Sync + 'static,
    {
        RegisteredProtocol {
            name,
            runner: Box::new(move || verify_with_codec(&build(), &opts)),
        }
    }

    /// The registry name (what `ppcheck verify <name>` matches).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Run the verification battery.
    pub fn run(&self) -> ProtocolReport {
        (self.runner)()
    }
}

/// Closure populations sized so the multiset enumeration stays well under
/// the default budget for each protocol's state-space size.
fn opts(closure_population: usize) -> VerifyOptions {
    VerifyOptions {
        closure_population,
        ..VerifyOptions::default()
    }
}

/// Interner-backed compositions have unbounded phase counters, so their
/// reachability closure is truncated at a prefix deep enough to exercise
/// the codec and symmetry checks without chasing the counters forever.
fn dynamic_opts() -> VerifyOptions {
    VerifyOptions {
        max_reachable: 600,
        ..VerifyOptions::default()
    }
}

/// All ten registered protocols at their verification parameters.
#[must_use]
pub fn standard_registry() -> Vec<RegisteredProtocol> {
    vec![
        RegisteredProtocol::with_codec("herman-tokens", opts(5), ppproto::HermanTokens::new),
        RegisteredProtocol::with_codec("stochastic-coalescence", opts(4), || {
            ppproto::StochasticCoalescence::new(8)
        }),
        RegisteredProtocol::with_codec("self-stab-ranking", opts(5), || {
            ppproto::SelfStabRanking::new(5)
        }),
        RegisteredProtocol::with_codec("tradeoff-election", opts(5), || {
            ppproto::TradeoffElection::new(5, 3)
        }),
        // The epidemic only moves once a source is informed, so the
        // reachability closure is seeded with the informed state.
        RegisteredProtocol::new(
            "dense-epidemic",
            VerifyOptions {
                seed_states: vec![1],
                ..opts(6)
            },
            || ppproto::DenseEpidemic,
        ),
        RegisteredProtocol::new("dense-junta", opts(4), || {
            ppproto::DenseJunta::with_max_level(4)
        }),
        RegisteredProtocol::new("dense-sync-clock", opts(4), || {
            ppproto::DenseSyncClock::new(4, 3, 3)
        }),
        RegisteredProtocol::with_codec("dense-approximate", dynamic_opts(), || {
            popcount::DenseApproximate::new(popcount::ApproximateParams::default())
        }),
        RegisteredProtocol::with_codec("dense-count-exact", dynamic_opts(), || {
            popcount::DenseCountExact::new(popcount::CountExactParams::default())
        }),
        RegisteredProtocol::with_codec("approximate-backup", opts(3), || {
            popcount::DenseApproximateBackup::with_max_k(6)
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_registry_covers_all_ten_protocols_with_unique_names() {
        let registry = standard_registry();
        assert_eq!(registry.len(), 10);
        let mut names: Vec<_> = registry.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10, "registry names must be unique");
    }
}
