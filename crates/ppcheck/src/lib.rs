//! `ppcheck` — ahead-of-run static analysis for the population-protocol
//! workspace.
//!
//! The crate has two layers, both run by the CI `static-analysis` job:
//!
//! 1. **Transition-system verification** ([`verify`]): every registered
//!    [`DenseProtocol`](ppsim::DenseProtocol) is exhaustively checked at
//!    small parameters against its own declarations — conservation laws
//!    over every reachable ordered pair, legitimate-set closure (silent
//!    stability), codec soundness (`encode ∘ decode` identity plus
//!    native/δ bisimulation), reachability and dead-state census, and an
//!    initiator/responder role-symmetry audit.  A violation prints a
//!    minimal counterexample pair.
//! 2. **Workspace source lint** ([`lint`]): project-specific rules the
//!    compiler cannot express — no panicking `unwrap`/`expect` in engine
//!    hot paths, no iteration-order-randomized `HashMap` in simulation
//!    code, no bare narrowing casts in count arithmetic, `#[must_use]`
//!    on result-carrying types — with a `// ppcheck: allow(<rule>)`
//!    escape hatch.
//!
//! # Declaring invariants
//!
//! Protocols opt in by overriding
//! [`DenseProtocol::invariants`](ppsim::DenseProtocol::invariants) and
//! [`DenseProtocol::legitimate`](ppsim::DenseProtocol::legitimate); the
//! verifier then proves the declarations over the reachable state space:
//!
//! ```
//! use std::sync::Arc;
//! use ppsim::{ConservationLaw, ConservedQuantity, DenseProtocol, ProtocolInvariants};
//!
//! /// Two tokens annihilate on meeting: token count never increases,
//! /// and its parity is exactly conserved.
//! #[derive(Clone, Copy)]
//! struct Annihilator;
//!
//! impl DenseProtocol for Annihilator {
//!     type Output = bool;
//!     fn num_states(&self) -> usize { 2 }
//!     fn initial_state(&self) -> usize { 1 }
//!     fn transition(&self, u: usize, v: usize) -> (usize, usize) {
//!         if u == 1 && v == 1 { (0, 0) } else { (u, v) }
//!     }
//!     fn output(&self, s: usize) -> bool { s == 1 }
//!     fn name(&self) -> &'static str { "annihilator" }
//!
//!     fn invariants(&self) -> ProtocolInvariants {
//!         ProtocolInvariants {
//!             conserved: vec![
//!                 ConservedQuantity {
//!                     name: "tokens",
//!                     law: ConservationLaw::NonIncreasing,
//!                     value: Arc::new(|c: &[u64]| c[1]),
//!                 },
//!                 ConservedQuantity {
//!                     name: "token-parity",
//!                     law: ConservationLaw::Exact,
//!                     value: Arc::new(|c: &[u64]| c[1] % 2),
//!                 },
//!             ],
//!             role_symmetric: Some(true),
//!         }
//!     }
//!
//!     /// Silent once no meeting can change anything: at most one token.
//!     fn legitimate(&self, counts: &[u64]) -> Option<bool> {
//!         Some(counts[1] <= 1)
//!     }
//! }
//!
//! let report = ppcheck::verify::verify_protocol(
//!     &Annihilator,
//!     &ppcheck::verify::VerifyOptions::default(),
//! );
//! assert!(report.passed(), "{:?}", report.failures);
//! ```
//!
//! # Command line
//!
//! ```text
//! ppcheck verify --all          # verify every registered protocol
//! ppcheck verify herman-tokens  # verify by registry name
//! ppcheck lint [ROOT]           # lint the workspace sources
//! ```
//!
//! Both subcommands exit non-zero on any failure, which is what gates CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lint;
pub mod registry;
pub mod verify;

pub use lint::{lint_workspace, Finding, LintReport};
pub use registry::{standard_registry, RegisteredProtocol};
pub use verify::{verify_protocol, verify_with_codec, ProtocolReport, VerifyOptions};
