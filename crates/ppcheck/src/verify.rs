//! The transition-system verifier: exhaustive ahead-of-run checks of a
//! [`DenseProtocol`]'s declared structural invariants.
//!
//! Where the scenario matrix ([`ppsim::conformance`]) *probes* invariants
//! along sampled trajectories, this module *proves* them over the whole
//! reachable transition system at small parameters:
//!
//! * **Reachability** — breadth-first closure of the state space under
//!   `δ` from the common initial state, pairing every discovered state
//!   with every other (both roles) exactly as the population model allows.
//! * **Conservation** — every [`ConservedQuantity`] declared by
//!   [`DenseProtocol::invariants`] is checked on *every* reachable ordered
//!   pair: for an additive quantity, the change under `δ(u, v)` in any
//!   configuration equals its change on the synthetic two-agent
//!   configuration (see [`ppsim::conformance::pair_quantity`]), so the
//!   per-pair check covers all configurations at once.
//! * **Legitimate-set closure** — every configuration of a small
//!   population that [`DenseProtocol::legitimate`] accepts must stay
//!   accepted under every single interaction (silent stability).
//! * **Codec soundness** — for protocols carrying an [`AgentCodec`]:
//!   `encode ∘ decode` is the identity over the reachable index space and
//!   the native `interact` bisimulates the dense `δ` on every reachable
//!   pair, superseding the sampled property tests.
//! * **Role-symmetry audit** — the measured initiator/responder symmetry
//!   of `δ` is compared against the declared expectation.
//!
//! Violations are reported with a **minimal counterexample pair**: checks
//! run in lexicographic index order, so the first failure is the smallest.

use std::fmt::Write as _;

use ppsim::conformance::{ConservationLaw, ConservedQuantity};
use ppsim::stint::AgentCodec;
use ppsim::{DenseProtocol, Protocol};

/// Knobs of one verification run; all checks are exhaustive within these
/// explicit budgets, and every budget that bites is reported as a note.
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Cap on the breadth-first reachable-state closure.  Protocols whose
    /// reachable space exceeds the cap (the interned compositions, whose
    /// absolute phase counters grow without bound) are verified over the
    /// first `max_reachable` states and flagged as truncated.
    pub max_reachable: usize,
    /// Population size for the legitimate-set closure enumeration.
    pub closure_population: usize,
    /// Skip the closure enumeration (with a note) when the number of
    /// configurations `C(n + m - 1, n)` exceeds this bound.
    pub max_closure_configs: u128,
    /// Extra seed states for the reachability closure, for protocols
    /// whose runs start from heterogeneous configurations (an epidemic
    /// needs an informed source agent).  The common
    /// [`DenseProtocol::initial_state`] is always seeded.
    pub seed_states: Vec<usize>,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            max_reachable: 4096,
            closure_population: 4,
            max_closure_configs: 250_000,
            seed_states: Vec::new(),
        }
    }
}

/// The outcome of verifying one protocol.
#[derive(Debug, Clone)]
#[must_use]
pub struct ProtocolReport {
    /// The protocol's [`DenseProtocol::name`].
    pub protocol: String,
    /// Reachable states discovered (≤ the truncation cap).
    pub reachable: usize,
    /// The declared index-space size ([`DenseProtocol::num_states`]);
    /// a capacity, not a census, for dynamic protocols.
    pub capacity: usize,
    /// Whether the reachability closure hit [`VerifyOptions::max_reachable`].
    pub truncated: bool,
    /// Ordered `δ` pairs evaluated by the exhaustive pass.
    pub pairs_checked: u64,
    /// Indices below `capacity` never reached (static protocols only;
    /// `None` for dynamic protocols, whose capacity is not a census).
    pub dead_states: Option<usize>,
    /// Reachable ordered pairs on which `δ(u, v) ≠ swap(δ(v, u))`.
    pub asymmetric_pairs: u64,
    /// Legitimate configurations enumerated by the closure check
    /// (`None` if the protocol declares no legitimate set or the
    /// enumeration was skipped).
    pub closure_configs: Option<u64>,
    /// Indices covered by the codec identity check (`None` when the
    /// protocol carries no codec).
    pub codec_indices: Option<usize>,
    /// Non-fatal observations (truncation, skipped checks, census).
    pub notes: Vec<String>,
    /// Invariant violations; empty means the protocol passed.
    pub failures: Vec<String>,
}

impl ProtocolReport {
    /// Whether every check passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Render the report as indented text lines (the CI artifact format).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let verdict = if self.passed() { "PASS" } else { "FAIL" };
        let _ = writeln!(out, "{}: {}", self.protocol, verdict);
        let _ = writeln!(
            out,
            "  reachable {} of {} indices{}, {} delta pairs checked",
            self.reachable,
            self.capacity,
            if self.truncated { " (truncated)" } else { "" },
            self.pairs_checked
        );
        if let Some(dead) = self.dead_states {
            let _ = writeln!(out, "  dead states: {dead}");
        }
        let _ = writeln!(out, "  asymmetric pairs: {}", self.asymmetric_pairs);
        if let Some(configs) = self.closure_configs {
            let _ = writeln!(out, "  legitimate closure: {configs} configurations");
        }
        if let Some(indices) = self.codec_indices {
            let _ = writeln!(out, "  codec identity over {indices} indices");
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        for failure in &self.failures {
            let _ = writeln!(out, "  FAIL: {failure}");
        }
        out
    }
}

/// Breadth-first closure of the reachable state set under `δ`.
///
/// Every unordered pair of distinct reachable states — and every state
/// with itself — is evaluated in both role orders by the time the closure
/// finishes: a state entering the frontier is paired with everything
/// discovered so far, and later states pair back with it when they enter.
fn reachable_closure<P: DenseProtocol>(
    protocol: &P,
    cap: usize,
    seeds: &[usize],
) -> (Vec<usize>, bool, u64) {
    let capacity = protocol.num_states();
    let mut member = vec![false; capacity];
    let mut all = Vec::new();
    for &s in std::iter::once(&protocol.initial_state()).chain(seeds) {
        if s < capacity && !member[s] {
            member[s] = true;
            all.push(s);
        }
    }
    let mut frontier = all.clone();
    let mut pairs = 0u64;
    let mut truncated = false;
    'grow: while !frontier.is_empty() {
        let mut next = Vec::new();
        // Snapshot: `all` already contains the frontier itself.
        let known = all.clone();
        for &u in &frontier {
            for &v in &known {
                for (a, b) in [protocol.transition(u, v), protocol.transition(v, u)] {
                    pairs += 1;
                    for s in [a, b] {
                        if s < member.len() && !member[s] {
                            member[s] = true;
                            all.push(s);
                            next.push(s);
                            if all.len() >= cap {
                                truncated = true;
                                break 'grow;
                            }
                        }
                    }
                }
            }
        }
        frontier = next;
    }
    all.sort_unstable();
    (all, truncated, pairs)
}

/// `C(n + m - 1, n)`: the number of `n`-agent configurations over `m`
/// states, saturating at `u128::MAX`.
fn multiset_count(m: usize, n: usize) -> u128 {
    let mut result: u128 = 1;
    for i in 0..n {
        let numerator = (m + i) as u128;
        let denominator = (i + 1) as u128;
        result = match result.checked_mul(numerator) {
            Some(r) => r / denominator,
            None => return u128::MAX,
        };
    }
    result
}

/// Render a configuration as a sparse `{state: count}` multiset.
fn render_config(counts: &[u64], states: &[usize]) -> String {
    let mut out = String::from("{");
    let mut first = true;
    for &s in states {
        if counts[s] > 0 {
            if !first {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: {}", s, counts[s]);
            first = false;
        }
    }
    out.push('}');
    out
}

/// Exhaustive per-pair conservation and role-symmetry pass, in
/// lexicographic pair order so the first violation is minimal.
fn check_pairs<P: DenseProtocol>(
    protocol: &P,
    states: &[usize],
    conserved: &[ConservedQuantity],
    report: &mut ProtocolReport,
) {
    let capacity = protocol.num_states();
    let mut scratch = vec![0u64; if conserved.is_empty() { 0 } else { capacity }];
    let mut conservation_hit = vec![false; conserved.len()];
    let mut asymmetry_example: Option<String> = None;
    for &u in states {
        for &v in states {
            let (a, b) = protocol.transition(u, v);
            report.pairs_checked += 1;
            // Role symmetry: δ(u, v) against the swapped image of δ(v, u).
            let (c, d) = protocol.transition(v, u);
            if (a, b) != (d, c) {
                report.asymmetric_pairs += 1;
                if asymmetry_example.is_none() {
                    asymmetry_example = Some(format!(
                        "δ({u}, {v}) = ({a}, {b}) but swap(δ({v}, {u})) = ({d}, {c})"
                    ));
                }
            }
            if conserved.is_empty() {
                continue;
            }
            for (idx, q) in conserved.iter().enumerate() {
                if conservation_hit[idx] {
                    continue;
                }
                // The synthetic two-agent configuration {u, v} before and
                // {a, b} after — sound for the additive quantities the
                // invariant declaration demands.
                scratch[u] += 1;
                scratch[v] += 1;
                let before = (q.value)(&scratch);
                scratch[u] -= 1;
                scratch[v] -= 1;
                scratch[a] += 1;
                scratch[b] += 1;
                let after = (q.value)(&scratch);
                scratch[a] -= 1;
                scratch[b] -= 1;
                let violated = match q.law {
                    ConservationLaw::Exact => after != before,
                    ConservationLaw::NonIncreasing => after > before,
                };
                if violated {
                    conservation_hit[idx] = true;
                    report.failures.push(format!(
                        "conserved quantity `{}` ({:?}) violated: minimal counterexample \
                         pair δ({u}, {v}) = ({a}, {b}) takes the value {before} -> {after}",
                        q.name, q.law
                    ));
                }
            }
        }
    }
    if report.asymmetric_pairs > 0 {
        if let Some(example) = asymmetry_example {
            report
                .notes
                .push(format!("first asymmetric pair: {example}"));
        }
    }
}

/// Closure of the legitimate set: no single interaction may leave it.
fn check_legitimate_closure<P: DenseProtocol>(
    protocol: &P,
    states: &[usize],
    opts: &VerifyOptions,
    report: &mut ProtocolReport,
) {
    let capacity = protocol.num_states();
    let n = opts.closure_population;
    // Probe the declaration on the all-initial configuration.
    let mut counts = vec![0u64; capacity];
    counts[protocol.initial_state()] = n as u64;
    if protocol.legitimate(&counts).is_none() {
        report
            .notes
            .push("no legitimate set declared; closure check skipped".to_string());
        return;
    }
    counts[protocol.initial_state()] = 0;
    let total = multiset_count(states.len(), n);
    if total > opts.max_closure_configs {
        report.notes.push(format!(
            "legitimate closure skipped: {total} configurations of {n} agents over \
             {} states exceed the budget of {}",
            states.len(),
            opts.max_closure_configs
        ));
        return;
    }
    let mut configs = 0u64;
    let mut violated = false;
    // Enumerate every n-agent multiset over the reachable states in
    // lexicographic order, checking each legitimate one for closure.
    enumerate_configs(protocol, states, 0, n, &mut counts, &mut |proto, counts| {
        if violated {
            return;
        }
        if proto.legitimate(counts) != Some(true) {
            return;
        }
        configs += 1;
        for &u in states {
            if counts[u] == 0 {
                continue;
            }
            for &v in states {
                let both = if u == v {
                    counts[u] >= 2
                } else {
                    counts[v] > 0
                };
                if !both {
                    continue;
                }
                let (a, b) = proto.transition(u, v);
                let before = render_config(counts, states);
                counts[u] -= 1;
                counts[v] -= 1;
                counts[a] += 1;
                counts[b] += 1;
                let still = proto.legitimate(counts) == Some(true);
                let after = if still {
                    String::new()
                } else {
                    render_config(counts, states)
                };
                counts[a] -= 1;
                counts[b] -= 1;
                counts[u] += 1;
                counts[v] += 1;
                if !still {
                    violated = true;
                    report.failures.push(format!(
                        "legitimate set not closed: minimal counterexample pair \
                         δ({u}, {v}) = ({a}, {b}) maps legitimate {before} to \
                         illegitimate {after}"
                    ));
                    return;
                }
            }
        }
    });
    report.closure_configs = Some(configs);
}

/// Recursive multiset enumeration over `states[from..]`, lexicographic in
/// the per-state counts (largest count on the smallest state first).
fn enumerate_configs<P: DenseProtocol>(
    protocol: &P,
    states: &[usize],
    from: usize,
    remaining: usize,
    counts: &mut Vec<u64>,
    visit: &mut impl FnMut(&P, &mut Vec<u64>),
) {
    if remaining == 0 {
        visit(protocol, counts);
        return;
    }
    if from == states.len() {
        return;
    }
    if from == states.len() - 1 {
        counts[states[from]] += remaining as u64;
        visit(protocol, counts);
        counts[states[from]] -= remaining as u64;
        return;
    }
    for here in (0..=remaining).rev() {
        counts[states[from]] += here as u64;
        enumerate_configs(protocol, states, from + 1, remaining - here, counts, visit);
        counts[states[from]] -= here as u64;
    }
}

/// Verify one protocol against its own declarations; see the module docs
/// for the battery.
pub fn verify_protocol<P: DenseProtocol>(protocol: &P, opts: &VerifyOptions) -> ProtocolReport {
    let (report, _states) = verify_protocol_inner(protocol, opts);
    report
}

fn verify_protocol_inner<P: DenseProtocol>(
    protocol: &P,
    opts: &VerifyOptions,
) -> (ProtocolReport, Vec<usize>) {
    let mut report = ProtocolReport {
        protocol: protocol.name().to_string(),
        reachable: 0,
        capacity: protocol.num_states(),
        truncated: false,
        pairs_checked: 0,
        dead_states: None,
        asymmetric_pairs: 0,
        closure_configs: None,
        codec_indices: None,
        notes: Vec::new(),
        failures: Vec::new(),
    };
    let (states, truncated, _grow_pairs) =
        reachable_closure(protocol, opts.max_reachable, &opts.seed_states);
    report.reachable = states.len();
    report.truncated = truncated;
    if truncated {
        report.notes.push(format!(
            "reachability truncated at {} states; checks cover the truncated prefix",
            states.len()
        ));
    }
    if protocol.dynamic() {
        report
            .notes
            .push("dynamic index space: capacity is not a census, dead states not counted".into());
    } else {
        report.dead_states = Some(report.capacity - states.len());
    }

    let invariants = protocol.invariants();
    check_pairs(protocol, &states, &invariants.conserved, &mut report);

    // Role-symmetry audit against the declaration.
    match invariants.role_symmetric {
        Some(true) if report.asymmetric_pairs > 0 => {
            report.failures.push(format!(
                "declared role-symmetric but {} reachable pairs are asymmetric (see notes)",
                report.asymmetric_pairs
            ));
        }
        Some(false) if report.asymmetric_pairs == 0 && !report.truncated => {
            report.failures.push(
                "declared role-asymmetric but δ is symmetric on every reachable pair".to_string(),
            );
        }
        _ => {}
    }

    if !truncated {
        check_legitimate_closure(protocol, &states, opts, &mut report);
    } else {
        report
            .notes
            .push("legitimate closure skipped: reachability was truncated".to_string());
    }
    (report, states)
}

/// Verify a codec-bearing protocol: the full battery of
/// [`verify_protocol`] plus `encode ∘ decode` identity and native/δ
/// bisimulation over the reachable index space.
pub fn verify_with_codec<P: AgentCodec>(protocol: &P, opts: &VerifyOptions) -> ProtocolReport {
    let (mut report, states) = verify_protocol_inner(protocol, opts);

    // Identity: over the full index space for total (static) encodings,
    // over the discovered states for interner-backed ones.
    let identity_domain: Vec<usize> = if protocol.dynamic() {
        states.clone()
    } else {
        (0..protocol.num_states()).collect()
    };
    let mut identity_failed = false;
    for &i in &identity_domain {
        match protocol.try_decode_agent(i) {
            None => {
                report.failures.push(format!(
                    "codec identity: index {i} is reachable but decodes to nothing"
                ));
                identity_failed = true;
            }
            Some(state) => {
                let back = protocol.encode_agent(&state);
                if back != i {
                    report.failures.push(format!(
                        "codec identity broken: minimal counterexample encode(decode({i})) = {back}"
                    ));
                    identity_failed = true;
                }
            }
        }
        if identity_failed {
            break;
        }
    }
    report.codec_indices = Some(identity_domain.len());

    // Bisimulation: native interact against dense δ on every reachable
    // ordered pair.  Dense transitions must not consult the RNG, so any
    // seed gives the same image.
    let native = protocol.native();
    let mut rng = ppsim::seeded_rng(0);
    'bisim: for &u in &states {
        for &v in &states {
            let (a, b) = protocol.transition(u, v);
            let (Some(mut du), Some(mut dv)) =
                (protocol.try_decode_agent(u), protocol.try_decode_agent(v))
            else {
                report.failures.push(format!(
                    "codec bisimulation: reachable pair ({u}, {v}) cannot be decoded"
                ));
                break 'bisim;
            };
            native.interact(&mut du, &mut dv, &mut rng);
            let (na, nb) = (protocol.encode_agent(&du), protocol.encode_agent(&dv));
            if (na, nb) != (a, b) {
                report.failures.push(format!(
                    "codec bisimulation broken: minimal counterexample pair \
                     δ({u}, {v}) = ({a}, {b}) but native interact gives ({na}, {nb})"
                ));
                break 'bisim;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-state one-way epidemic with a correct declaration.
    #[derive(Debug, Clone, Copy)]
    struct Rumor;
    impl DenseProtocol for Rumor {
        type Output = bool;
        fn num_states(&self) -> usize {
            2
        }
        fn initial_state(&self) -> usize {
            0
        }
        fn transition(&self, u: usize, v: usize) -> (usize, usize) {
            (u.max(v), v)
        }
        fn output(&self, s: usize) -> bool {
            s == 1
        }
        fn name(&self) -> &'static str {
            "rumor"
        }
        fn invariants(&self) -> ppsim::ProtocolInvariants {
            ppsim::ProtocolInvariants {
                conserved: vec![ppsim::ConservedQuantity {
                    name: "susceptible",
                    law: ConservationLaw::NonIncreasing,
                    value: std::sync::Arc::new(|c: &[u64]| c[0]),
                }],
                role_symmetric: Some(false),
            }
        }
        fn legitimate(&self, counts: &[u64]) -> Option<bool> {
            Some(counts[0] == 0 || counts[1] == 0)
        }
    }

    /// The epidemic only moves once a source is informed, so the closure
    /// must be seeded with the informed state.
    fn rumor_opts() -> VerifyOptions {
        VerifyOptions {
            seed_states: vec![1],
            ..VerifyOptions::default()
        }
    }

    #[test]
    fn a_correct_declaration_passes_every_check() {
        let report = verify_protocol(&Rumor, &rumor_opts());
        assert!(report.passed(), "{:?}", report.failures);
        assert_eq!(report.reachable, 2);
        assert_eq!(report.dead_states, Some(0));
        assert!(report.asymmetric_pairs > 0);
        assert!(report.closure_configs.is_some());
    }

    #[test]
    fn multiset_count_matches_the_binomial() {
        assert_eq!(multiset_count(2, 3), 4); // C(4, 3)
        assert_eq!(multiset_count(4, 6), 84); // C(9, 6)
        assert_eq!(multiset_count(1, 5), 1);
    }

    #[test]
    fn the_report_renders_the_verdict_and_the_census() {
        let report = verify_protocol(&Rumor, &rumor_opts());
        let text = report.render();
        assert!(text.starts_with("rumor: PASS"));
        assert!(text.contains("reachable 2 of 2 indices"));
        assert!(text.contains("dead states: 0"));
    }
}
