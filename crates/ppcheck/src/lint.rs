//! The workspace source-lint pass: project-specific rules the compiler
//! and clippy cannot express, enforced over the first-party crates.
//!
//! Rules (scoped by path, see `rules_for` in this module):
//!
//! * `no-unwrap` — no `.unwrap()` / `.expect(` in engine hot paths
//!   (`crates/ppsim/src`); engine code returns [`SimError`] instead of
//!   panicking mid-run.  Test modules are exempt.
//! * `hashmap-iter` — no `std::collections::HashMap` in simulation code
//!   paths (`ppsim`, `protocols`, `core`): its iteration order is
//!   randomized per process, which silently breaks deterministic replay.
//!   Use `BTreeMap` or the dense index space.
//! * `narrowing-cast` — no bare `as` narrowing casts on lines doing
//!   count/mass arithmetic; use `try_from` with an explicit error or a
//!   justified allow.
//! * `must-use-outcome` — public result-carrying types (`*Outcome`,
//!   `*Verdict`, `*Summary`, `*Report`) must be `#[must_use]` so callers
//!   cannot silently drop a verdict.
//!
//! Any finding can be silenced with `// ppcheck: allow(<rule>)` on the
//! same or the immediately preceding line; allows are expected to carry a
//! justification comment.
//!
//! [`SimError`]: ppsim::SimError

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A single lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path relative to the lint root, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule identifier (what an allow comment must name).
    pub rule: &'static str,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

/// The outcome of one lint pass.
#[derive(Debug, Clone, Default)]
#[must_use]
pub struct LintReport {
    /// All violations, in path-then-line order.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Whether the tree is clean.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.findings.is_empty()
    }

    /// Render the report in the golden output format.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "ppcheck lint: {} file(s) scanned, {} finding(s)",
            self.files_scanned,
            self.findings.len()
        );
        for f in &self.findings {
            let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.excerpt);
        }
        out
    }
}

/// Which rules apply to one file.
#[derive(Debug, Clone, Copy, Default)]
struct RuleSet {
    no_unwrap: bool,
    hashmap_iter: bool,
    narrowing_cast: bool,
    must_use_outcome: bool,
}

/// Path-based rule scoping, on `/`-separated paths relative to the root.
fn rules_for(rel: &str) -> RuleSet {
    let in_sim_crate = rel.starts_with("crates/ppsim/src/")
        || rel.starts_with("crates/protocols/src/")
        || rel.starts_with("crates/core/src/");
    let first_party = in_sim_crate
        || rel.starts_with("crates/analysis/src/")
        || rel.starts_with("crates/ppcheck/src/")
        || rel.starts_with("src/");
    RuleSet {
        no_unwrap: rel.starts_with("crates/ppsim/src/"),
        hashmap_iter: in_sim_crate,
        narrowing_cast: in_sim_crate,
        must_use_outcome: first_party,
    }
}

/// Blank out comments and string/char literals, preserving line structure,
/// so the rules never fire on prose.  Returns the sanitized text.
fn sanitize(source: &str) -> String {
    #[derive(Clone, Copy, PartialEq)]
    enum Mode {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
    }
    let bytes: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut mode = Mode::Code;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match mode {
            Mode::Code => match c {
                '/' if next == Some('/') => {
                    mode = Mode::LineComment;
                    out.push_str("  ");
                    i += 2;
                }
                '/' if next == Some('*') => {
                    mode = Mode::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                }
                '"' => {
                    mode = Mode::Str;
                    out.push('"');
                    i += 1;
                }
                'r' if matches!(next, Some('"' | '#')) => {
                    // Raw string: count the hashes after `r`.
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') {
                        mode = Mode::RawStr(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
                '\'' => {
                    // Char literal vs lifetime: a literal closes with a
                    // quote one or two (escaped) chars later.
                    let close = match next {
                        Some('\\') => bytes.get(i + 3) == Some(&'\''),
                        Some(_) => bytes.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    if close {
                        let end = if next == Some('\\') { i + 3 } else { i + 2 };
                        for &b in &bytes[i..=end] {
                            out.push(if b == '\n' { '\n' } else { ' ' });
                        }
                        i = end + 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            },
            Mode::LineComment => {
                if c == '\n' {
                    mode = Mode::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            Mode::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    // Keep the newline of a line-continuation escape so
                    // line numbers stay aligned with the raw source.
                    out.push(' ');
                    if let Some(n) = next {
                        out.push(if n == '\n' { '\n' } else { ' ' });
                    }
                    i += 2;
                } else if c == '"' {
                    mode = Mode::Code;
                    out.push('"');
                    i += 1;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0;
                    while seen < hashes && bytes.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        mode = Mode::Code;
                        for _ in i..j {
                            out.push(' ');
                        }
                        i = j;
                        continue;
                    }
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
                i += 1;
            }
        }
    }
    out
}

/// Compute, per line, whether it falls inside a `#[cfg(test)]` region.
fn test_regions(sanitized_lines: &[&str]) -> Vec<bool> {
    let mut in_test = vec![false; sanitized_lines.len()];
    let mut depth: i64 = 0;
    // Depths at which an open `#[cfg(test)]` item started.
    let mut region_stack: Vec<i64> = Vec::new();
    let mut pending_cfg_test = false;
    for (idx, line) in sanitized_lines.iter().enumerate() {
        if region_stack.is_empty() && line.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        }
        let opens = line.matches('{').count() as i64;
        let closes = line.matches('}').count() as i64;
        if pending_cfg_test && opens > 0 {
            region_stack.push(depth);
            pending_cfg_test = false;
        }
        let in_region = !region_stack.is_empty() || pending_cfg_test;
        in_test[idx] = in_region;
        depth += opens - closes;
        while region_stack.last().is_some_and(|&d| depth <= d) {
            region_stack.pop();
        }
    }
    in_test
}

/// Whether `line` (or the preceding raw line) carries an allow marker for
/// `rule`.
fn allowed(raw_lines: &[&str], idx: usize, rule: &str) -> bool {
    let marker = format!("ppcheck: allow({rule})");
    raw_lines[idx].contains(&marker) || (idx > 0 && raw_lines[idx - 1].contains(&marker))
}

/// Whether `needle` occurs in `hay` followed by a non-identifier char.
fn contains_token(hay: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let end = from + pos + needle.len();
        let boundary = hay[end..]
            .chars()
            .next()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if boundary {
            return true;
        }
        from = end;
    }
    false
}

const NARROWING_TARGETS: [&str; 6] = [
    " as u8", " as u16", " as u32", " as i8", " as i16", " as i32",
];
const COUNT_CONTEXT: [&str; 8] = [
    "count",
    "counts",
    "mass",
    "total",
    "population",
    "agents",
    "token",
    "size",
];
const MUST_USE_SUFFIXES: [&str; 4] = ["Outcome", "Verdict", "Summary", "Report"];

/// Lint one file's source; `rel` is its `/`-separated path from the root.
fn lint_source(rel: &str, source: &str, findings: &mut Vec<Finding>) {
    let rules = rules_for(rel);
    if !(rules.no_unwrap || rules.hashmap_iter || rules.narrowing_cast || rules.must_use_outcome) {
        return;
    }
    let sanitized = sanitize(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let clean_lines: Vec<&str> = sanitized.lines().collect();
    let in_test = test_regions(&clean_lines);
    let mut push = |idx: usize, rule: &'static str| {
        if !allowed(&raw_lines, idx, rule) {
            findings.push(Finding {
                file: rel.to_string(),
                line: idx + 1,
                rule,
                excerpt: raw_lines[idx].trim().to_string(),
            });
        }
    };
    for (idx, line) in clean_lines.iter().enumerate() {
        if in_test[idx] {
            continue;
        }
        if rules.no_unwrap && (line.contains(".unwrap()") || line.contains(".expect(")) {
            push(idx, "no-unwrap");
        }
        if rules.hashmap_iter && line.contains("collections::HashMap") {
            push(idx, "hashmap-iter");
        }
        if rules.narrowing_cast
            && NARROWING_TARGETS.iter().any(|t| contains_token(line, t))
            && COUNT_CONTEXT.iter().any(|w| {
                line.to_ascii_lowercase()
                    .split(|c: char| !c.is_alphanumeric() && c != '_')
                    .any(|tok| tok.split('_').any(|part| part == *w))
            })
        {
            push(idx, "narrowing-cast");
        }
        if rules.must_use_outcome {
            if let Some(name) = declared_type_name(line) {
                if MUST_USE_SUFFIXES.iter().any(|s| name.ends_with(s))
                    && !has_must_use_above(&clean_lines, idx)
                {
                    push(idx, "must-use-outcome");
                }
            }
        }
    }
}

/// The name in a `pub struct X` / `pub enum X` declaration, if any.
fn declared_type_name(line: &str) -> Option<&str> {
    let trimmed = line.trim_start();
    let rest = trimmed
        .strip_prefix("pub struct ")
        .or_else(|| trimmed.strip_prefix("pub enum "))?;
    let end = rest
        .find(|c: char| !c.is_alphanumeric() && c != '_')
        .unwrap_or(rest.len());
    Some(&rest[..end])
}

/// Scan upward over attributes and blank lines for `#[must_use]`.
fn has_must_use_above(lines: &[&str], idx: usize) -> bool {
    for line in lines[..idx].iter().rev() {
        let t = line.trim();
        if t.contains("#[must_use") {
            return true;
        }
        if t.is_empty() || t.starts_with("#[") || t.starts_with("#!") {
            continue;
        }
        return false;
    }
    false
}

/// Directories never descended into.
const SKIP_DIRS: [&str; 6] = ["vendor", "target", ".git", "tests", "benches", "examples"];

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::path);
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk(&path, files)?;
            }
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Lint every first-party `.rs` file under `root`.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    let mut report = LintReport::default();
    for path in files {
        let rel: String = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let source = fs::read_to_string(&path)?;
        report.files_scanned += 1;
        lint_source(&rel, &source, &mut report.findings);
    }
    report
        .findings
        .sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_blanks_comments_and_strings() {
        let src = "let x = \".unwrap()\"; // .expect(\nlet y = 1;";
        let clean = sanitize(src);
        assert!(!clean.contains(".unwrap()"));
        assert!(!clean.contains(".expect("));
        assert!(clean.contains("let y = 1;"));
    }

    #[test]
    fn sanitize_keeps_lifetimes_and_blanks_char_literals() {
        let clean = sanitize("fn f<'a>(x: &'a str) { let c = '{'; }");
        assert!(clean.contains("fn f<'a>(x: &'a str)"));
        assert_eq!(clean.matches('{').count(), 1, "literal brace blanked");
    }

    #[test]
    fn unwrap_in_engine_path_is_flagged_but_tests_are_exempt() {
        let src =
            "fn hot() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let mut findings = Vec::new();
        lint_source("crates/ppsim/src/engine.rs", src, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 1);
        assert_eq!(findings[0].rule, "no-unwrap");
    }

    #[test]
    fn an_allow_marker_on_the_preceding_line_silences_the_rule() {
        let src = "// justified: poisoning is unrecoverable\n// ppcheck: allow(no-unwrap)\nfn hot() { x.unwrap(); }\n";
        let mut findings = Vec::new();
        lint_source("crates/ppsim/src/engine.rs", src, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn narrowing_casts_need_count_context_to_fire() {
        let mut findings = Vec::new();
        lint_source(
            "crates/ppsim/src/batched.rs",
            "let a = total_count as u32;\nlet b = color as u32;\n",
            &mut findings,
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 1);
        assert_eq!(findings[0].rule, "narrowing-cast");
    }

    #[test]
    fn outcome_types_must_be_must_use() {
        let src = "#[derive(Debug)]\npub struct RunOutcome { x: u32 }\n\n#[must_use]\npub struct GoodReport;\n";
        let mut findings = Vec::new();
        lint_source("crates/ppsim/src/convergence.rs", src, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "must-use-outcome");
        assert_eq!(findings[0].line, 2);
    }
}
