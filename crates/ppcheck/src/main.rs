//! The `ppcheck` binary: `verify` runs the transition-system battery over
//! the registry, `lint` runs the workspace source rules.  Non-zero exit
//! on any failure; the rendered reports are the CI artifact.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use ppcheck::{lint_workspace, standard_registry};

const USAGE: &str = "usage:\n  ppcheck verify --all\n  ppcheck verify <name>...\n  ppcheck lint [ROOT]\n  ppcheck list";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("verify") => verify(&args[1..]),
        Some("lint") => lint(args.get(1).map(PathBuf::from)),
        Some("list") => {
            for entry in standard_registry() {
                println!("{}", entry.name());
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn verify(selectors: &[String]) -> ExitCode {
    let registry = standard_registry();
    let all = selectors.iter().any(|s| s == "--all") || selectors.is_empty();
    let selected: Vec<_> = if all {
        registry.iter().collect()
    } else {
        let mut picked = Vec::new();
        for name in selectors {
            match registry.iter().find(|e| e.name() == name) {
                Some(entry) => picked.push(entry),
                None => {
                    eprintln!("ppcheck: unknown protocol `{name}` (try `ppcheck list`)");
                    return ExitCode::from(2);
                }
            }
        }
        picked
    };
    let mut failures = 0usize;
    for entry in &selected {
        let report = entry.run();
        print!("{}", report.render());
        if !report.passed() {
            failures += 1;
        }
    }
    println!(
        "ppcheck verify: {} protocol(s), {} failure(s)",
        selected.len(),
        failures
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn lint(root: Option<PathBuf>) -> ExitCode {
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    match lint_workspace(&root) {
        Ok(report) => {
            print!("{}", report.render());
            if report.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("ppcheck lint: cannot walk {}: {err}", root.display());
            ExitCode::from(2)
        }
    }
}
