//! Golden-output test for the lint pass: a synthetic workspace with one
//! violation of every rule must produce exactly the expected report.

use std::fs;
use std::path::Path;

use ppcheck::lint_workspace;

fn write(root: &Path, rel: &str, content: &str) {
    let path = root.join(rel);
    fs::create_dir_all(path.parent().expect("fixture paths have parents")).expect("mkdir");
    fs::write(path, content).expect("write fixture");
}

#[test]
fn the_lint_report_matches_the_golden_output() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-golden");
    if root.exists() {
        fs::remove_dir_all(&root).expect("clean fixture root");
    }

    // One violation per rule, plus an allowed site and a test module that
    // must both stay silent.
    write(
        &root,
        "crates/ppsim/src/engine.rs",
        r#"fn hot(x: Option<u64>) -> u64 {
    x.unwrap()
}

fn stash(total_count: u64) -> u32 {
    total_count as u32
}

fn allowed(x: Option<u64>) -> u64 {
    // Poisoning means another thread panicked. ppcheck: allow(no-unwrap)
    x.expect("justified")
}

#[cfg(test)]
mod tests {
    fn exempt(x: Option<u64>) -> u64 {
        x.unwrap()
    }
}
"#,
    );
    write(
        &root,
        "crates/core/src/census.rs",
        "use std::collections::HashMap;\n",
    );
    write(
        &root,
        "crates/protocols/src/outcome.rs",
        "/// An undecorated result type.\npub struct ElectionOutcome {\n    pub leader: usize,\n}\n",
    );
    // Out-of-scope trees must not be walked at all.
    write(
        &root,
        "vendor/fake/src/lib.rs",
        "fn v(x: Option<u8>) -> u8 { x.unwrap() }\n",
    );
    write(
        &root,
        "crates/ppsim/tests/it.rs",
        "fn t(x: Option<u8>) -> u8 { x.unwrap() }\n",
    );

    let report = lint_workspace(&root).expect("lint walk");
    let expected = "\
ppcheck lint: 3 file(s) scanned, 4 finding(s)
crates/core/src/census.rs:1: [hashmap-iter] use std::collections::HashMap;
crates/ppsim/src/engine.rs:2: [no-unwrap] x.unwrap()
crates/ppsim/src/engine.rs:6: [narrowing-cast] total_count as u32
crates/protocols/src/outcome.rs:2: [must-use-outcome] pub struct ElectionOutcome {
";
    assert_eq!(report.render(), expected);
    assert!(!report.passed());
}

#[test]
fn a_clean_tree_passes() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-clean");
    if root.exists() {
        fs::remove_dir_all(&root).expect("clean fixture root");
    }
    write(
        &root,
        "crates/ppsim/src/lib.rs",
        "#[must_use]\npub struct RunReport {\n    pub steps: u64,\n}\n",
    );
    let report = lint_workspace(&root).expect("lint walk");
    assert!(report.passed(), "{}", report.render());
    assert_eq!(report.files_scanned, 1);
}
