//! Negative fixtures for the transition-system verifier: protocols whose
//! declarations are deliberately wrong, each of which must fail with the
//! expected minimal counterexample.

use std::sync::Arc;

use ppcheck::verify::{verify_protocol, verify_with_codec, VerifyOptions};
use ppsim::stint::AgentCodec;
use ppsim::{ConservationLaw, ConservedQuantity, DenseProtocol, Protocol, ProtocolInvariants};

/// A token duplicator that (falsely) declares its token count conserved:
/// state 1 infects state 0 on contact, so `c[1]` strictly grows.
#[derive(Debug, Clone, Copy)]
struct BrokenConservation;

impl DenseProtocol for BrokenConservation {
    type Output = bool;
    fn num_states(&self) -> usize {
        2
    }
    fn initial_state(&self) -> usize {
        0
    }
    fn transition(&self, u: usize, v: usize) -> (usize, usize) {
        if u == 1 || v == 1 {
            (1, 1)
        } else {
            (u, v)
        }
    }
    fn output(&self, s: usize) -> bool {
        s == 1
    }
    fn name(&self) -> &'static str {
        "broken-conservation"
    }
    fn invariants(&self) -> ProtocolInvariants {
        ProtocolInvariants {
            conserved: vec![ConservedQuantity {
                name: "tokens",
                law: ConservationLaw::Exact,
                value: Arc::new(|c: &[u64]| c[1]),
            }],
            role_symmetric: Some(true),
        }
    }
}

#[test]
fn a_broken_conservation_law_fails_with_a_minimal_counterexample_pair() {
    let opts = VerifyOptions {
        seed_states: vec![1],
        ..VerifyOptions::default()
    };
    let report = verify_protocol(&BrokenConservation, &opts);
    assert!(!report.passed());
    let failure = report
        .failures
        .iter()
        .find(|f| f.contains("conserved quantity `tokens`"))
        .expect("the conservation failure must be reported");
    // Lexicographically first violating pair: δ(0, 1) = (1, 1).
    assert!(
        failure.contains("δ(0, 1) = (1, 1)") && failure.contains("1 -> 2"),
        "unexpected counterexample: {failure}"
    );
}

/// A protocol whose legitimate set is not closed under δ: it declares
/// "at most one token" legitimate, but two zeros can *create* a token.
#[derive(Debug, Clone, Copy)]
struct LeakyLegitimate;

impl DenseProtocol for LeakyLegitimate {
    type Output = bool;
    fn num_states(&self) -> usize {
        2
    }
    fn initial_state(&self) -> usize {
        0
    }
    fn transition(&self, u: usize, v: usize) -> (usize, usize) {
        if u == 0 && v == 0 {
            (1, 0)
        } else {
            (u, v)
        }
    }
    fn output(&self, s: usize) -> bool {
        s == 1
    }
    fn name(&self) -> &'static str {
        "leaky-legitimate"
    }
    fn legitimate(&self, counts: &[u64]) -> Option<bool> {
        Some(counts[1] <= 1)
    }
}

#[test]
fn a_leaky_legitimate_set_fails_the_closure_check() {
    let report = verify_protocol(&LeakyLegitimate, &VerifyOptions::default());
    assert!(!report.passed());
    let failure = report
        .failures
        .iter()
        .find(|f| f.contains("legitimate set not closed"))
        .expect("the closure failure must be reported");
    // The legitimate configuration {0: 3, 1: 1} breaks under
    // δ(0, 0) = (1, 0), which mints a second token.
    assert!(
        failure.contains("δ(0, 0) = (1, 0)") && failure.contains("illegitimate"),
        "unexpected counterexample: {failure}"
    );
}

/// The native side of the broken codec: a plain two-state epidemic.
#[derive(Debug, Clone, Copy)]
struct NativeRumor;

impl Protocol for NativeRumor {
    type State = bool;
    type Output = bool;
    fn initial_state(&self) -> bool {
        false
    }
    fn interact(&self, u: &mut bool, v: &mut bool, _rng: &mut rand::rngs::SmallRng) {
        let informed = *u || *v;
        *u = informed;
        *v = informed;
    }
    fn output(&self, s: &bool) -> bool {
        *s
    }
}

/// A codec that is not a bijection: both dense indices decode to `false`,
/// so `encode(decode(1))` collapses to 0.
#[derive(Debug, Clone, Copy)]
struct BrokenCodec;

impl DenseProtocol for BrokenCodec {
    type Output = bool;
    fn num_states(&self) -> usize {
        2
    }
    fn initial_state(&self) -> usize {
        0
    }
    fn transition(&self, u: usize, v: usize) -> (usize, usize) {
        let informed = u.max(v);
        (informed, informed)
    }
    fn output(&self, s: usize) -> bool {
        s == 1
    }
    fn name(&self) -> &'static str {
        "broken-codec"
    }
}

impl AgentCodec for BrokenCodec {
    type Native = NativeRumor;
    fn native(&self) -> NativeRumor {
        NativeRumor
    }
    fn decode_agent(&self, _index: usize) -> bool {
        false
    }
    fn encode_agent(&self, state: &bool) -> usize {
        usize::from(*state)
    }
}

#[test]
fn a_non_bijective_codec_fails_the_identity_check() {
    let opts = VerifyOptions {
        seed_states: vec![1],
        ..VerifyOptions::default()
    };
    let report = verify_with_codec(&BrokenCodec, &opts);
    assert!(!report.passed());
    let failure = report
        .failures
        .iter()
        .find(|f| f.contains("codec identity broken"))
        .expect("the identity failure must be reported");
    assert!(
        failure.contains("encode(decode(1)) = 0"),
        "unexpected counterexample: {failure}"
    );
}

/// A codec whose dense δ disagrees with the native dynamics: the dense
/// side swaps the pair image, so the bisimulation check must object.
#[derive(Debug, Clone, Copy)]
struct DriftingCodec;

impl DenseProtocol for DriftingCodec {
    type Output = bool;
    fn num_states(&self) -> usize {
        2
    }
    fn initial_state(&self) -> usize {
        0
    }
    fn transition(&self, u: usize, v: usize) -> (usize, usize) {
        // Deliberately NOT the epidemic the native protocol implements:
        // the initiator never learns.
        (u, v.max(u))
    }
    fn output(&self, s: usize) -> bool {
        s == 1
    }
    fn name(&self) -> &'static str {
        "drifting-codec"
    }
}

impl AgentCodec for DriftingCodec {
    type Native = NativeRumor;
    fn native(&self) -> NativeRumor {
        NativeRumor
    }
    fn decode_agent(&self, index: usize) -> bool {
        index == 1
    }
    fn encode_agent(&self, state: &bool) -> usize {
        usize::from(*state)
    }
}

#[test]
fn a_dense_native_mismatch_fails_the_bisimulation_check() {
    let opts = VerifyOptions {
        seed_states: vec![1],
        ..VerifyOptions::default()
    };
    let report = verify_with_codec(&DriftingCodec, &opts);
    assert!(!report.passed());
    let failure = report
        .failures
        .iter()
        .find(|f| f.contains("codec bisimulation broken"))
        .expect("the bisimulation failure must be reported");
    // Lexicographically first disagreeing pair: the dense δ leaves the
    // initiator ignorant on (0, 1) while the native epidemic informs both.
    assert!(
        failure.contains("δ(0, 1) = (0, 1)") && failure.contains("native interact gives (1, 1)"),
        "unexpected counterexample: {failure}"
    );
}

#[test]
fn the_standard_registry_passes_end_to_end() {
    for entry in ppcheck::standard_registry() {
        let report = entry.run();
        assert!(
            report.passed(),
            "{} failed verification: {:?}",
            entry.name(),
            report.failures
        );
    }
}
