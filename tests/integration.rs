//! Cross-crate integration tests: the full protocol compositions driven through the
//! public APIs of `ppsim`, `ppproto` and `popcount`.

use popcount::{
    all_counted, all_estimated, all_estimates_valid, all_exact, valid_estimates, Approximate,
    ApproximateParams, CountExact, CountExactParams, StableApproximate, StableCountExact,
    TokenMergingCounter,
};
use ppsim::{derive_seed, AllPairsScheduler, Simulator};

#[test]
fn approximate_matches_the_baseline_story() {
    // The fast protocol and the naive baseline agree on what they are counting.
    let n = 350usize;
    let proto = Approximate::new(ApproximateParams::default());
    let mut sim = Simulator::new(proto, n, 99).unwrap();
    let outcome = sim.run_until(|s| all_estimated(s.states()), (n * 20) as u64, 120_000_000);
    assert!(outcome.converged());
    let estimate = sim.output_stats().unanimous().cloned().flatten().unwrap();
    let (floor, ceil) = valid_estimates(n);
    assert!(estimate == floor || estimate == ceil);

    let mut baseline = Simulator::new(TokenMergingCounter::new(), n, 100).unwrap();
    let outcome = baseline.run_until(
        move |s| s.states().iter().all(|a| a.best == n as u64),
        (n * n / 8) as u64,
        400_000_000,
    );
    assert!(outcome.converged());
    // The baseline output n is consistent with the fast estimate 2^k up to factor 2.
    let est = 2f64.powi(estimate);
    assert!(est >= n as f64 / 2.0 && est <= 2.0 * n as f64);
}

#[test]
fn count_exact_is_exact_across_population_sizes_and_seeds() {
    for (i, &n) in [150usize, 400, 700].iter().enumerate() {
        let proto = CountExact::new(CountExactParams::default());
        let mut sim = Simulator::new(proto, n, derive_seed(7, i as u64)).unwrap();
        let outcome = sim.run_until(
            move |s| all_counted(s.protocol(), s.states(), n),
            (n * 30) as u64,
            200_000_000,
        );
        assert!(outcome.converged(), "CountExact failed for n = {n}");
    }
}

#[test]
fn count_exact_interactions_scale_quasilinearly() {
    // Doubling the population should far less than quadruple the interaction count
    // (Theorem 2: O(n log n); the baseline would quadruple).  A single seeded run
    // per size is too noisy to assert a ratio on (the phase-clock granularity alone
    // moves single-run convergence times by large constant factors), so average a
    // few seeds per size.
    let trials = 3u64;
    let mut costs = Vec::new();
    for (i, &n) in [300usize, 1200].iter().enumerate() {
        let mut total = 0.0;
        for t in 0..trials {
            let proto = CountExact::new(CountExactParams::default());
            let mut sim = Simulator::new(proto, n, derive_seed(21, i as u64 * trials + t)).unwrap();
            let outcome = sim.run_until(
                move |s| all_counted(s.protocol(), s.states(), n),
                (n * 30) as u64,
                400_000_000,
            );
            total += outcome.expect_converged("CountExact") as f64;
        }
        costs.push(total / trials as f64);
    }
    let growth = costs[1] / costs[0];
    assert!(
        growth < 9.0,
        "quadrupling-or-worse growth ({growth:.1}×) contradicts the O(n log n) claim"
    );
}

#[test]
fn stable_variants_reach_correct_outputs() {
    let n = 220usize;
    let mut approx = Simulator::new(StableApproximate::default(), n, 5).unwrap();
    let outcome = approx.run_until(
        move |s| all_estimates_valid(s.protocol(), s.states(), n),
        (n * 20) as u64,
        300_000_000,
    );
    assert!(outcome.converged(), "stable Approximate did not converge");

    let mut exact = Simulator::new(StableCountExact::default(), n, 6).unwrap();
    let outcome = exact.run_until(
        move |s| all_exact(s.protocol(), s.states(), n),
        (n * 20) as u64,
        300_000_000,
    );
    assert!(outcome.converged(), "stable CountExact did not converge");
}

#[test]
fn converged_count_exact_output_is_stable_under_an_adversarial_schedule() {
    // Stabilisation probe: once CountExact has converged, replaying every ordered
    // pair of agents (an adversarial schedule) must not change any output.
    let n = 120usize;
    let proto = CountExact::new(CountExactParams::default());
    let mut sim = Simulator::new(proto, n, 11).unwrap();
    let outcome = sim.run_until(
        move |s| all_counted(s.protocol(), s.states(), n),
        (n * 30) as u64,
        200_000_000,
    );
    assert!(outcome.converged());

    let states = sim.states().to_vec();
    let proto = CountExact::new(CountExactParams::default());
    let mut adversarial = Simulator::with_scheduler(proto, n, 0, AllPairsScheduler::new()).unwrap();
    adversarial.states_mut().clone_from_slice(&states);
    adversarial.run(AllPairsScheduler::cycle_len(n) * 3);
    assert!(
        all_counted(adversarial.protocol(), adversarial.states(), n),
        "an adversarial schedule changed a converged output"
    );
}
