//! Umbrella crate for the *On Counting the Population Size* (PODC 2019)
//! reproduction workspace.
//!
//! This crate exists so that the repository-level integration tests
//! (`tests/`) and runnable examples (`examples/`) have a package to hang off;
//! it simply re-exports the member crates.  Depend on the member crates
//! directly in downstream code:
//!
//! * [`ppsim`] — the simulation engines (sequential, batched and sharded),
//! * [`ppproto`] — auxiliary protocols (epidemics, junta, phase clocks, …),
//! * [`popcount`] — the counting protocols of the paper.

#![forbid(unsafe_code)]

pub use popcount;
pub use ppproto;
pub use ppsim;
